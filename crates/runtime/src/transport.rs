//! Socket transport for multi-process topologies (DESIGN.md §4f).
//!
//! A process group is a full mesh of Unix-domain stream sockets (the
//! framing is byte-stream only, so the links are TCP-ready). Worker `i`
//! **binds its own listener first**, then connects to every worker `k < i`
//! (retrying until the peer's listener exists — the OS backlog queues
//! early connects, so the mesh cannot deadlock), then accepts the
//! remaining `workers - 1 - i` links. Each link exchanges a [`Hello`] in
//! both directions and validates the wire version, group shape, topology
//! fingerprint, and dictionary epoch before any data flows.
//!
//! Per peer link the executor runs two threads:
//!
//! * the **writer** drains an unbounded channel of [`WireItem`]s, encodes
//!   frames into a cork buffer and flushes when the channel is momentarily
//!   empty (writev-style coalescing that never splits or merges an
//!   `Envelope::Batch`, preserving PR 2 batch boundaries). A write error
//!   marks the link dead and keeps draining — local sends never fail, so
//!   emitted counts stay deterministic.
//! * the **reader** decodes frames and forwards them into the target
//!   task's local channel (blocking sends give socket-level backpressure),
//!   notifying the scheduler hub edge-triggered, exactly like an
//!   in-process producer.
//!
//! Shutdown mirrors in-process channel-disconnect semantics with explicit
//! `Close` frames: when a producer's `Outbox` drops, it sends one `Close`
//! per remote (target, edge-kind); the reader holds one local sender clone
//! per fed channel and drops it when the deterministic expected-close
//! count (computed from topology + placement on both sides) reaches zero.
//! Per-link FIFO guarantees no frame follows its producer's close. Without
//! this, cross-process *feedback* edges would form a process-level wait
//! cycle at shutdown (each worker's feedback drain waiting on the other's
//! writer to close).
//!
//! A link EOF with closes still outstanding means the peer died. The
//! reader then synthesizes `Envelope::Eos(from)` for every still-open
//! forward (producer, target) pair — the aligner's quorum shrinks exactly
//! as in the PR 4 EOS-before-punctuation fix — and drops all held senders,
//! so survivors complete their windows instead of hanging.

use std::fs;
use std::io::{self, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender, TryRecvError};

use crate::executor::Envelope;
use crate::metrics::TaskInstruments;
use crate::sched::Hub;
use crate::wire::{
    decode_frame, decode_hello, encode_frame, encode_hello, read_frame, Frame, Hello, Payload,
    WireCodec,
};

/// How long a joining worker waits for peers to appear / handshake.
const JOIN_TIMEOUT: Duration = Duration::from_secs(20);
/// Writer cork buffer is force-flushed beyond this size even when more
/// items are queued.
const FLUSH_THRESHOLD: usize = 256 * 1024;

/// Everything a worker needs to join (or form) a process group.
#[derive(Debug, Clone)]
pub struct GroupSetup {
    /// Total processes in the group.
    pub workers: usize,
    /// This process's worker id in `0..workers`.
    pub my_worker: usize,
    /// Directory holding the group's Unix socket files.
    pub socket_dir: PathBuf,
    /// Attempt number; socket names embed it so a recovery re-run never
    /// races stale sockets from a killed previous attempt.
    pub attempt: u32,
    /// Fingerprint of the deployed topology + config; all workers must
    /// agree or the handshake fails.
    pub topo_fingerprint: u64,
    /// Dictionary epoch the group will speak (see `WireCodec::epoch`).
    pub dict_epoch: u64,
}

impl GroupSetup {
    fn socket_path(&self, worker: usize) -> PathBuf {
        self.socket_dir
            .join(format!("ssj-w{worker}.a{}.sock", self.attempt))
    }
}

/// A joined process group: one connected, handshake-validated stream per
/// peer worker.
pub struct Group {
    my_worker: usize,
    workers: usize,
    pub(crate) peers: Vec<Option<UnixStream>>,
}

impl Group {
    /// This process's worker id.
    pub fn my_worker(&self) -> usize {
        self.my_worker
    }

    /// Total workers in the group.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

fn invalid<E: std::fmt::Display>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

fn read_hello_frame(stream: &mut UnixStream, scratch: &mut Vec<u8>) -> io::Result<Hello> {
    if !read_frame(stream, scratch)? {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "peer closed during handshake",
        ));
    }
    decode_hello(scratch).map_err(invalid)
}

fn check_hello(setup: &GroupSetup, hello: &Hello, expect_worker: Option<usize>) -> io::Result<()> {
    if let Some(w) = expect_worker {
        if hello.worker != w {
            return Err(invalid(format!(
                "expected worker {w} on this link, peer claims {}",
                hello.worker
            )));
        }
    }
    if hello.workers != setup.workers {
        return Err(invalid(format!(
            "group size mismatch: ours {}, peer's {}",
            setup.workers, hello.workers
        )));
    }
    if hello.topo_fingerprint != setup.topo_fingerprint {
        return Err(invalid(format!(
            "topology fingerprint mismatch: ours {:#x}, peer's {:#x}",
            setup.topo_fingerprint, hello.topo_fingerprint
        )));
    }
    if hello.dict_epoch != setup.dict_epoch {
        return Err(invalid(format!(
            "dictionary epoch mismatch: ours {:#x}, peer's {:#x}",
            setup.dict_epoch, hello.dict_epoch
        )));
    }
    Ok(())
}

/// Join the process group described by `setup`: bind this worker's
/// listener, connect to every lower-numbered worker, accept every
/// higher-numbered one, and exchange + validate handshakes on each link.
///
/// The control-plane contract: the *connector* sends its [`Hello`] first;
/// the *acceptor* reads first (identifying which peer the link belongs
/// to), validates, then replies with its own. Either side rejecting the
/// handshake surfaces as `InvalidData` here.
pub fn join_group(setup: &GroupSetup) -> io::Result<Group> {
    assert!(setup.my_worker < setup.workers, "worker id out of range");
    let my_path = setup.socket_path(setup.my_worker);
    let _ = fs::remove_file(&my_path);
    fs::create_dir_all(&setup.socket_dir)?;
    let listener = UnixListener::bind(&my_path)?;

    let hello = Hello {
        worker: setup.my_worker,
        workers: setup.workers,
        topo_fingerprint: setup.topo_fingerprint,
        dict_epoch: setup.dict_epoch,
    };
    let mut hello_buf = Vec::new();
    encode_hello(&hello, &mut hello_buf);

    let deadline = Instant::now() + JOIN_TIMEOUT;
    let mut scratch = Vec::new();
    let mut peers: Vec<Option<UnixStream>> = (0..setup.workers).map(|_| None).collect();

    // Connect to every lower-numbered worker; its listener is bound before
    // it starts connecting upward, so retry-until-present cannot deadlock.
    #[allow(clippy::needless_range_loop)] // `peers[w]` assignment below
    for w in 0..setup.my_worker {
        let path = setup.socket_path(w);
        let mut stream = loop {
            match UnixStream::connect(&path) {
                Ok(s) => break s,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::NotFound | io::ErrorKind::ConnectionRefused
                    ) && Instant::now() < deadline =>
                {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("connecting to worker {w} at {}: {e}", path.display()),
                    ))
                }
            }
        };
        stream.set_read_timeout(Some(JOIN_TIMEOUT))?;
        stream.write_all(&hello_buf)?;
        let peer = read_hello_frame(&mut stream, &mut scratch)?;
        check_hello(setup, &peer, Some(w))?;
        stream.set_read_timeout(None)?;
        peers[w] = Some(stream);
    }

    // Accept every higher-numbered worker (they identify themselves in
    // their hello, so arrival order does not matter).
    listener.set_nonblocking(true)?;
    for _ in setup.my_worker + 1..setup.workers {
        let mut stream = loop {
            match listener.accept() {
                Ok((s, _)) => break s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "timed out waiting for peer workers to join",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        };
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(JOIN_TIMEOUT))?;
        let peer = read_hello_frame(&mut stream, &mut scratch)?;
        check_hello(setup, &peer, None)?;
        if peer.worker <= setup.my_worker || peer.worker >= setup.workers {
            return Err(invalid(format!(
                "unexpected peer worker id {}",
                peer.worker
            )));
        }
        if peers[peer.worker].is_some() {
            return Err(invalid(format!(
                "duplicate link from worker {}",
                peer.worker
            )));
        }
        stream.write_all(&hello_buf)?;
        stream.set_read_timeout(None)?;
        peers[peer.worker] = Some(stream);
    }
    drop(listener);
    let _ = fs::remove_file(&my_path);

    Ok(Group {
        my_worker: setup.my_worker,
        workers: setup.workers,
        peers,
    })
}

// ---------------------------------------------------------------------------
// Link threads (spawned by the executor, one pair per peer)
// ---------------------------------------------------------------------------

/// One unit on a writer thread's queue.
pub(crate) enum WireItem<M> {
    /// An envelope bound for remote global task `target`.
    Env {
        target: usize,
        feedback: bool,
        env: Envelope<M>,
    },
    /// A producer dropped its senders for this remote edge.
    Close {
        target: usize,
        from: usize,
        feedback: bool,
    },
}

fn encode_item<M: 'static>(item: WireItem<M>, codec: &dyn WireCodec<M>, out: &mut Vec<u8>) {
    let frame = match item {
        WireItem::Env {
            target,
            feedback,
            env,
        } => {
            let (from, payload) = match env {
                Envelope::Data(m, f) => (f, Payload::Data(m)),
                Envelope::Batch(v, f) => (f, Payload::Batch(v)),
                Envelope::Punct(p, f) => (f, Payload::Punct(p)),
                Envelope::Eos(f) => (f, Payload::Eos),
            };
            Frame {
                target,
                from,
                feedback,
                payload,
            }
        }
        WireItem::Close {
            target,
            from,
            feedback,
        } => Frame {
            target,
            from,
            feedback,
            payload: Payload::Close,
        },
    };
    encode_frame(&frame, codec, out);
}

/// Writer side of one peer link. Owns the queue receiver; exits when every
/// queue sender (task outboxes + the executor's own handle) is gone, then
/// half-closes the socket so the peer's reader sees a clean EOF.
pub(crate) fn writer_loop<M: 'static>(
    mut stream: UnixStream,
    rx: Receiver<WireItem<M>>,
    codec: Arc<dyn WireCodec<M>>,
    insts: Arc<TaskInstruments>,
) {
    let bytes_sent = insts.counter("bytes_sent");
    let frames_sent = insts.counter("frames_sent");
    let serialize_ns = insts.counter("serialize_ns");
    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut dead = false;

    let mut write_out = |buf: &mut Vec<u8>, dead: &mut bool, flush: bool| {
        if *dead || buf.is_empty() {
            buf.clear();
            return;
        }
        if stream.write_all(buf).is_err() || (flush && stream.flush().is_err()) {
            // Keep draining the queue so producers' sends keep succeeding;
            // the peer's death is surfaced by our reader on the same link.
            *dead = true;
        } else {
            bytes_sent.add(buf.len() as u64);
        }
        buf.clear();
    };

    'outer: loop {
        let mut item = match rx.recv() {
            Ok(i) => i,
            Err(_) => break,
        };
        loop {
            if !dead {
                let t0 = Instant::now();
                encode_item(item, &*codec, &mut buf);
                serialize_ns.add(t0.elapsed().as_nanos() as u64);
                frames_sent.inc();
                if buf.len() >= FLUSH_THRESHOLD {
                    write_out(&mut buf, &mut dead, false);
                }
            }
            match rx.try_recv() {
                Ok(next) => item = next,
                // Momentarily idle: cork point — flush what we have.
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break 'outer,
            }
        }
        write_out(&mut buf, &mut dead, true);
    }
    write_out(&mut buf, &mut dead, true);
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

/// What one peer reader needs to dispatch frames locally: sender clones
/// for every local channel this peer can feed, the deterministic number of
/// `Close` frames each will receive, and the forward (producer, target)
/// pairs to synthesize EOS for if the peer dies.
pub(crate) struct ReaderPlan<M> {
    /// Forward-channel senders indexed by global target id.
    pub fwd: Vec<Option<Sender<Envelope<M>>>>,
    /// Feedback-channel senders indexed by global target id.
    pub fb: Vec<Option<Sender<Envelope<M>>>>,
    /// Expected `Close` frames per forward target (one per remote producer
    /// task with an edge to it).
    pub fwd_closes: Vec<usize>,
    /// Expected `Close` frames per feedback target.
    pub fb_closes: Vec<usize>,
    /// Forward (remote producer global, local target global) pairs, for
    /// synthesized EOS on peer death.
    pub eos_pairs: Vec<(usize, usize)>,
}

/// Reader side of one peer link. Exits at link EOF (clean or not); on an
/// unclean EOF synthesizes EOS so local aligners shrink their quorum, and
/// in all cases drops every held sender so local channels disconnect.
pub(crate) fn reader_loop<M: Send + 'static>(
    mut stream: UnixStream,
    codec: Arc<dyn WireCodec<M>>,
    mut plan: ReaderPlan<M>,
    hub: Option<Arc<Hub>>,
    errors: Arc<Mutex<Vec<String>>>,
    insts: Arc<TaskInstruments>,
    peer: usize,
) {
    let bytes_recv = insts.counter("bytes_recv");
    let frames_recv = insts.counter("frames_recv");
    let deserialize_ns = insts.counter("deserialize_ns");
    let disconnects = insts.counter("peer_disconnects");
    let notify = |target: usize| {
        if let Some(h) = &hub {
            h.notify(target);
        }
    };
    let mut scratch = Vec::new();
    let mut clean = true;
    loop {
        match read_frame(&mut stream, &mut scratch) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => {
                errors
                    .lock()
                    .unwrap()
                    .push(format!("reading from worker {peer}: {e}"));
                clean = false;
                break;
            }
        }
        bytes_recv.add(4 + scratch.len() as u64);
        let t0 = Instant::now();
        let frame = match decode_frame(&scratch, &*codec) {
            Ok(f) => f,
            Err(e) => {
                errors
                    .lock()
                    .unwrap()
                    .push(format!("decoding frame from worker {peer}: {e}"));
                clean = false;
                break;
            }
        };
        deserialize_ns.add(t0.elapsed().as_nanos() as u64);
        frames_recv.inc();
        let target = frame.target;
        let (senders, closes) = if frame.feedback {
            (&mut plan.fb, &mut plan.fb_closes)
        } else {
            (&mut plan.fwd, &mut plan.fwd_closes)
        };
        if target >= senders.len() {
            errors.lock().unwrap().push(format!(
                "worker {peer} sent frame for unknown task {target}"
            ));
            clean = false;
            break;
        }
        let env = match frame.payload {
            Payload::Data(m) => Envelope::Data(m, frame.from),
            Payload::Batch(v) => Envelope::Batch(v, frame.from),
            Payload::Punct(p) => Envelope::Punct(p, frame.from),
            Payload::Eos => Envelope::Eos(frame.from),
            Payload::Close => {
                // The remote producer dropped its senders for this edge;
                // mirror it locally once the last producer behind this
                // link has done so. FIFO per link means nothing else from
                // that producer can follow.
                if closes[target] > 0 {
                    closes[target] -= 1;
                    if closes[target] == 0 {
                        senders[target] = None;
                        notify(target);
                    }
                }
                continue;
            }
        };
        if let Some(tx) = &senders[target] {
            // Blocking send: a full local channel backpressures this link
            // at the socket layer, exactly like an in-process producer.
            let _ = tx.send(env);
            notify(target);
        }
    }

    // Unclean EOF (peer died or stream corrupt) with edges still open:
    // synthesize EOS for every still-open forward pair so aligners shrink
    // their punctuation quorum instead of hanging the window. The aligner
    // treats a duplicate EOS (real EOS already seen, Close not yet) as
    // idempotent.
    let died = plan.fwd_closes.iter().any(|&c| c > 0) || plan.fb_closes.iter().any(|&c| c > 0);
    if died {
        disconnects.inc();
        if clean {
            errors
                .lock()
                .unwrap()
                .push(format!("worker {peer} disconnected mid-run"));
        }
        for &(from, target) in &plan.eos_pairs {
            if plan.fwd_closes[target] > 0 {
                if let Some(tx) = &plan.fwd[target] {
                    let _ = tx.send(Envelope::Eos(from));
                }
            }
        }
    }
    for target in 0..plan.fwd.len() {
        let had = plan.fwd[target].take().is_some() | plan.fb[target].take().is_some();
        if had {
            notify(target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn setup_for(dir: &std::path::Path, worker: usize, fp: u64) -> GroupSetup {
        GroupSetup {
            workers: 2,
            my_worker: worker,
            socket_dir: dir.to_path_buf(),
            attempt: 0,
            topo_fingerprint: fp,
            dict_epoch: 0xabc,
        }
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ssj-transport-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn two_worker_mesh_handshakes() {
        let dir = scratch_dir("ok");
        let d1 = dir.clone();
        let peer = std::thread::spawn(move || join_group(&setup_for(&d1, 1, 42)).unwrap());
        let g0 = join_group(&setup_for(&dir, 0, 42)).unwrap();
        let g1 = peer.join().unwrap();
        assert_eq!(g0.my_worker(), 0);
        assert_eq!(g1.my_worker(), 1);
        assert!(g0.peers[1].is_some() && g0.peers[0].is_none());
        assert!(g1.peers[0].is_some() && g1.peers[1].is_none());

        // The link is a working byte stream in both directions.
        let mut a = g0.peers[1].as_ref().unwrap().try_clone().unwrap();
        let mut b = g1.peers[0].as_ref().unwrap().try_clone().unwrap();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_rejected() {
        let dir = scratch_dir("fp");
        let d1 = dir.clone();
        let peer = std::thread::spawn(move || join_group(&setup_for(&d1, 1, 7)));
        let r0 = join_group(&setup_for(&dir, 0, 8));
        let r1 = peer.join().unwrap();
        assert!(
            r0.is_err() || r1.is_err(),
            "mismatched topology fingerprints must fail the handshake"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
