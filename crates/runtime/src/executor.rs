//! The threaded executor: one OS thread per task, crossbeam channels for
//! tuple transport, punctuation alignment, and end-of-stream termination.
//!
//! Semantics:
//! * Delivery is reliable and in order per (sender task, receiver task) —
//!   in-process channels give us the exactly-once processing Storm is
//!   configured to guarantee in the paper.
//! * A **punctuation** emitted by the spouts (window boundary) is aligned:
//!   a bolt task sees `on_punct(p)` only after receiving punctuation `p`
//!   from *every* forward upstream task, then forwards it downstream —
//!   windows therefore tumble consistently across the whole topology.
//! * **End of stream**: when every spout finishes, EOS tokens flow along
//!   forward edges; a bolt task finishes after EOS from all forward
//!   upstream tasks. Feedback edges carry data but never gate termination.
//! * A panicking task is reported in [`RunError::TaskPanicked`]; remaining
//!   tasks drain and shut down (disconnected channels count as EOS).

use crate::topology::{Component, ComponentKind, Grouping, Subscription, Topology};
use crate::{Bolt, Spout, SpoutEmit, TaskInfo};
use crossbeam::channel::{bounded, unbounded, Receiver, Select, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Internal envelope moving between tasks.
enum Envelope<M> {
    /// A data message from global task `from`.
    Data(M, usize),
    /// Punctuation `id` from global task `from`.
    Punct(u64, usize),
    /// End of stream from global task `from`.
    Eos(usize),
}

/// Per-task throughput counters, reported in [`RunReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskMetrics {
    /// Component name.
    pub component: String,
    /// Task index within the component.
    pub task: usize,
    /// Data messages received.
    pub received: u64,
    /// Data messages emitted (counting each delivered copy).
    pub emitted: u64,
    /// Punctuations processed.
    pub puncts: u64,
    /// Time spent inside user code (`execute` / `on_punct` / spout `next`),
    /// excluding channel waits — the task's *busy* time.
    pub busy: std::time::Duration,
}

/// The outcome of a completed run.
#[derive(Debug)]
pub struct RunReport {
    /// One entry per task.
    pub tasks: Vec<TaskMetrics>,
}

impl RunReport {
    /// Sum of received counts for one component.
    pub fn received(&self, component: &str) -> u64 {
        self.tasks
            .iter()
            .filter(|t| t.component == component)
            .map(|t| t.received)
            .sum()
    }

    /// Sum of emitted counts for one component.
    pub fn emitted(&self, component: &str) -> u64 {
        self.tasks
            .iter()
            .filter(|t| t.component == component)
            .map(|t| t.emitted)
            .sum()
    }

    /// Per-task received counts for one component, ordered by task index.
    pub fn received_per_task(&self, component: &str) -> Vec<u64> {
        let mut v: Vec<(usize, u64)> = self
            .tasks
            .iter()
            .filter(|t| t.component == component)
            .map(|t| (t.task, t.received))
            .collect();
        v.sort();
        v.into_iter().map(|(_, r)| r).collect()
    }
}

/// Errors surfaced by [`run`].
#[derive(Debug)]
pub enum RunError {
    /// One or more tasks panicked; the payload lists `component[task]`.
    TaskPanicked(Vec<String>),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::TaskPanicked(tasks) => {
                write!(f, "tasks panicked: {}", tasks.join(", "))
            }
        }
    }
}

impl std::error::Error for RunError {}

/// One outgoing subscription as seen by a producer task.
struct OutEdge<M> {
    grouping: Grouping<M>,
    /// Sender to each task of the subscribing component.
    targets: Vec<Sender<Envelope<M>>>,
    /// Round-robin cursor for shuffle.
    cursor: usize,
}

/// The producer-side API handed to spouts and bolts.
pub struct Outbox<M> {
    my_global: usize,
    edges: Vec<OutEdge<M>>,
    emitted: u64,
}

impl<M: Clone> Outbox<M> {
    /// Emit `msg` to every non-direct subscription, routed per grouping.
    /// Each delivery clones; callers stream `Arc`-wrapped payloads, so a
    /// clone is a reference-count bump.
    pub fn emit(&mut self, msg: M) {
        for edge in &mut self.edges {
            match &edge.grouping {
                Grouping::Direct => continue,
                Grouping::Shuffle => {
                    let t = edge.cursor % edge.targets.len();
                    edge.cursor = edge.cursor.wrapping_add(1);
                    if edge.targets[t]
                        .send(Envelope::Data(msg.clone(), self.my_global))
                        .is_ok()
                    {
                        self.emitted += 1;
                    }
                }
                Grouping::Fields(key) => {
                    let h = key(&msg);
                    let t = (h % edge.targets.len() as u64) as usize;
                    if edge.targets[t]
                        .send(Envelope::Data(msg.clone(), self.my_global))
                        .is_ok()
                    {
                        self.emitted += 1;
                    }
                }
                Grouping::Global => {
                    if edge.targets[0]
                        .send(Envelope::Data(msg.clone(), self.my_global))
                        .is_ok()
                    {
                        self.emitted += 1;
                    }
                }
                Grouping::All => {
                    for t in &edge.targets {
                        if t.send(Envelope::Data(msg.clone(), self.my_global)).is_ok() {
                            self.emitted += 1;
                        }
                    }
                }
            }
        }
    }

    /// Emit `msg` to task `task` of every direct-grouped subscription.
    pub fn emit_direct(&mut self, task: usize, msg: M) {
        for edge in &mut self.edges {
            if matches!(edge.grouping, Grouping::Direct) {
                if let Some(sender) = edge.targets.get(task) {
                    if sender
                        .send(Envelope::Data(msg.clone(), self.my_global))
                        .is_ok()
                    {
                        self.emitted += 1;
                    }
                }
            }
        }
    }

    fn punctuate(&mut self, p: u64) {
        for edge in &mut self.edges {
            for t in &edge.targets {
                let _ = t.send(Envelope::Punct(p, self.my_global));
            }
        }
    }

    fn eos(&mut self) {
        for edge in &mut self.edges {
            for t in &edge.targets {
                let _ = t.send(Envelope::Eos(self.my_global));
            }
        }
    }
}

struct TaskWiring<M> {
    info: TaskInfo,
    rx: Receiver<Envelope<M>>,
    outbox: Outbox<M>,
    fb_rx: Receiver<Envelope<M>>,
    /// Global ids of forward upstream tasks (gate punct/EOS).
    forward_upstreams: Vec<usize>,
    /// The component subscribes to at least one feedback edge: after EOS it
    /// drains in-flight control traffic until every sender disconnects.
    has_feedback_upstream: bool,
    kind: TaskKind<M>,
}

enum TaskKind<M> {
    Spout(Box<dyn Spout<M>>),
    Bolt(Box<dyn Bolt<M>>),
}

/// Run a topology to completion and report per-task metrics.
pub fn run<M: Clone + Send + 'static>(topology: Topology<M>) -> Result<RunReport, RunError> {
    let Topology {
        components,
        index,
        channel_capacity,
    } = topology;

    // Global task numbering: components in order, tasks within.
    let mut base: Vec<usize> = Vec::with_capacity(components.len());
    let mut total = 0usize;
    for c in &components {
        base.push(total);
        total += c.parallelism;
    }

    // Two channels per task: a *bounded* one for forward traffic (the
    // forward graph is a DAG, so bounded sends give deadlock-free
    // backpressure — a flooding spout is throttled by its slowest consumer)
    // and an *unbounded* one for feedback control traffic (bounding a cycle
    // could deadlock).
    let cap = channel_capacity;
    let mut fwd_senders: Vec<Sender<Envelope<M>>> = Vec::with_capacity(total);
    let mut fwd_receivers: Vec<Option<Receiver<Envelope<M>>>> = Vec::with_capacity(total);
    let mut fb_senders: Vec<Sender<Envelope<M>>> = Vec::with_capacity(total);
    let mut fb_receivers: Vec<Option<Receiver<Envelope<M>>>> = Vec::with_capacity(total);
    for _ in 0..total {
        let (tx, rx) = bounded(cap);
        fwd_senders.push(tx);
        fwd_receivers.push(Some(rx));
        let (tx, rx) = unbounded();
        fb_senders.push(tx);
        fb_receivers.push(Some(rx));
    }

    // Outgoing edges per component: (grouping, subscriber component index).
    let mut out_edges: Vec<Vec<(Grouping<M>, usize, bool)>> = vec![Vec::new(); components.len()];
    for (ci, c) in components.iter().enumerate() {
        for Subscription {
            source,
            grouping,
            feedback,
        } in &c.subscriptions
        {
            let si = index[source];
            out_edges[si].push((grouping.clone(), ci, *feedback));
        }
    }

    // Forward upstream task lists per component, and feedback presence.
    let mut forward_upstreams: Vec<Vec<usize>> = vec![Vec::new(); components.len()];
    let mut has_feedback: Vec<bool> = vec![false; components.len()];
    for (ci, c) in components.iter().enumerate() {
        for s in &c.subscriptions {
            if s.feedback {
                has_feedback[ci] = true;
            } else {
                let si = index[&s.source];
                for t in 0..components[si].parallelism {
                    forward_upstreams[ci].push(base[si] + t);
                }
            }
        }
    }

    // Build task wirings.
    let par: Vec<usize> = components.iter().map(|c| c.parallelism).collect();
    let mut wirings: Vec<TaskWiring<M>> = Vec::with_capacity(total);
    for (ci, c) in components.into_iter().enumerate() {
        let Component {
            name,
            parallelism,
            kind,
            subscriptions: _,
        } = c;
        for task in 0..parallelism {
            let global = base[ci] + task;
            let edges: Vec<OutEdge<M>> = out_edges[ci]
                .iter()
                .map(|(grouping, target_ci, feedback)| OutEdge {
                    grouping: grouping.clone(),
                    targets: (0..par[*target_ci])
                        .map(|t| {
                            let g = base[*target_ci] + t;
                            if *feedback {
                                fb_senders[g].clone()
                            } else {
                                fwd_senders[g].clone()
                            }
                        })
                        .collect(),
                    // Stagger shuffle cursors per producer so k producers
                    // doing round-robin do not all hit the same target.
                    cursor: global,
                })
                .collect();
            let outbox = Outbox {
                my_global: global,
                edges,
                emitted: 0,
            };
            let instance = match &kind {
                ComponentKind::Spout(f) => TaskKind::Spout(f(task)),
                ComponentKind::Bolt(f) => TaskKind::Bolt(f(task)),
            };
            wirings.push(TaskWiring {
                info: TaskInfo {
                    component: name.clone(),
                    task_index: task,
                    parallelism,
                },
                rx: fwd_receivers[global].take().expect("receiver unclaimed"),
                fb_rx: fb_receivers[global].take().expect("fb receiver unclaimed"),
                outbox,
                forward_upstreams: forward_upstreams[ci].clone(),
                has_feedback_upstream: has_feedback[ci],
                kind: instance,
            });
        }
    }
    drop(fwd_senders); // tasks own the only senders now (inside outboxes)
    drop(fb_senders);
    drop(fwd_receivers);
    drop(fb_receivers);

    let metrics: Arc<Mutex<Vec<TaskMetrics>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::with_capacity(wirings.len());
    for wiring in wirings {
        let metrics = Arc::clone(&metrics);
        let label = format!("{}[{}]", wiring.info.component, wiring.info.task_index);
        let handle = std::thread::Builder::new()
            .name(label.clone())
            .spawn(move || run_task(wiring, metrics))
            .expect("spawn task thread");
        handles.push((label, handle));
    }

    let mut panicked = Vec::new();
    for (label, handle) in handles {
        if handle.join().is_err() {
            panicked.push(label);
        }
    }
    if !panicked.is_empty() {
        return Err(RunError::TaskPanicked(panicked));
    }
    let tasks = std::mem::take(&mut *metrics.lock());
    Ok(RunReport { tasks })
}

/// Punctuation alignment with per-upstream blocking.
///
/// A forward upstream that has already punctuated the window being aligned
/// is *blocked*: its subsequent envelopes are buffered until the punctuation
/// has arrived from every forward upstream. This keeps window contents exact
/// even when upstream tasks run at different speeds — without it, data from
/// fast upstreams would leak into the previous window.
struct Aligner<M> {
    forward: std::collections::HashSet<usize>,
    needed: usize,
    /// Punctuations processed but not yet aligned, per upstream.
    ahead: HashMap<usize, u32>,
    /// Buffered envelopes per blocked upstream, FIFO.
    queues: HashMap<usize, std::collections::VecDeque<Envelope<M>>>,
    punct_counts: HashMap<u64, usize>,
    eos_seen: usize,
}

impl<M: Clone> Aligner<M> {
    fn new(forward_upstreams: &[usize]) -> Self {
        Aligner {
            forward: forward_upstreams.iter().copied().collect(),
            needed: forward_upstreams.len(),
            ahead: HashMap::new(),
            queues: HashMap::new(),
            punct_counts: HashMap::new(),
            eos_seen: 0,
        }
    }

    /// Feed one envelope; returns `true` once every forward upstream
    /// delivered EOS.
    fn handle(
        &mut self,
        env: Envelope<M>,
        bolt: &mut dyn Bolt<M>,
        out: &mut Outbox<M>,
        m: &mut TaskMetrics,
    ) -> bool {
        let from = match &env {
            Envelope::Data(_, f) | Envelope::Punct(_, f) | Envelope::Eos(f) => *f,
        };
        if !self.forward.contains(&from) {
            // Feedback edge: data flows immediately, control is ignored.
            if let Envelope::Data(msg, _) = env {
                m.received += 1;
                bolt.execute(msg, out);
            }
            return false;
        }
        if self.ahead.get(&from).copied().unwrap_or(0) > 0 {
            self.queues.entry(from).or_default().push_back(env);
        } else {
            self.process(env, bolt, out, m);
            self.drain(bolt, out, m);
        }
        self.eos_seen == self.needed
    }

    fn process(
        &mut self,
        env: Envelope<M>,
        bolt: &mut dyn Bolt<M>,
        out: &mut Outbox<M>,
        m: &mut TaskMetrics,
    ) {
        match env {
            Envelope::Data(msg, _) => {
                m.received += 1;
                bolt.execute(msg, out);
            }
            Envelope::Punct(p, from) => {
                *self.ahead.entry(from).or_insert(0) += 1;
                let c = self.punct_counts.entry(p).or_insert(0);
                *c += 1;
                if *c == self.needed {
                    self.punct_counts.remove(&p);
                    m.puncts += 1;
                    bolt.on_punct(p, out);
                    out.punctuate(p);
                    // Retire each upstream's oldest outstanding punctuation.
                    for a in self.ahead.values_mut() {
                        *a = a.saturating_sub(1);
                    }
                }
            }
            Envelope::Eos(_) => self.eos_seen += 1,
        }
    }

    /// Replay buffered envelopes from upstreams that are no longer blocked;
    /// an alignment completed during replay can unblock further upstreams.
    fn drain(&mut self, bolt: &mut dyn Bolt<M>, out: &mut Outbox<M>, m: &mut TaskMetrics) {
        loop {
            let candidate = self
                .queues
                .iter()
                .find(|(u, q)| !q.is_empty() && self.ahead.get(u).copied().unwrap_or(0) == 0)
                .map(|(&u, _)| u);
            match candidate {
                Some(u) => {
                    let env = self
                        .queues
                        .get_mut(&u)
                        .and_then(|q| q.pop_front())
                        .expect("candidate queue non-empty");
                    self.process(env, bolt, out, m);
                }
                None => break,
            }
        }
    }
}

fn run_task<M: Clone + Send + 'static>(
    mut w: TaskWiring<M>,
    metrics: Arc<Mutex<Vec<TaskMetrics>>>,
) {
    let mut m = TaskMetrics {
        component: w.info.component.clone(),
        task: w.info.task_index,
        ..TaskMetrics::default()
    };

    match &mut w.kind {
        TaskKind::Spout(spout) => loop {
            let t0 = std::time::Instant::now();
            let emission = spout.next();
            m.busy += t0.elapsed();
            match emission {
                SpoutEmit::Message(msg) => {
                    w.outbox.emit(msg);
                }
                SpoutEmit::Punctuate(p) => {
                    m.puncts += 1;
                    w.outbox.punctuate(p);
                }
                SpoutEmit::Done => {
                    w.outbox.eos();
                    break;
                }
            }
        },
        TaskKind::Bolt(bolt) => {
            bolt.prepare(&w.info);
            let mut align = Aligner::new(&w.forward_upstreams);
            let mut fwd_open = true;
            let mut fb_open = w.has_feedback_upstream;
            'run: while fwd_open {
                // Select over the forward (bounded) and feedback (unbounded)
                // channels; feedback control traffic interleaves with data.
                let mut sel = Select::new();
                let fwd_idx = sel.recv(&w.rx);
                let fb_idx = if fb_open {
                    Some(sel.recv(&w.fb_rx))
                } else {
                    None
                };
                let op = sel.select();
                let idx = op.index();
                if idx == fwd_idx {
                    match op.recv(&w.rx) {
                        Ok(envelope) => {
                            let t0 = std::time::Instant::now();
                            let done = align.handle(envelope, bolt.as_mut(), &mut w.outbox, &mut m);
                            m.busy += t0.elapsed();
                            if done {
                                break 'run; // all forward upstreams at EOS
                            }
                        }
                        // All forward senders gone (e.g. upstream panicked).
                        Err(_) => fwd_open = false,
                    }
                } else if Some(idx) == fb_idx {
                    match op.recv(&w.fb_rx) {
                        Ok(envelope) => {
                            let t0 = std::time::Instant::now();
                            let _ = align.handle(envelope, bolt.as_mut(), &mut w.outbox, &mut m);
                            m.busy += t0.elapsed();
                        }
                        Err(_) => fb_open = false,
                    }
                }
            }
            bolt.finish(&mut w.outbox);
            w.outbox.eos();
            if w.has_feedback_upstream {
                // Control loops may still be sending while their own
                // shutdown propagates; drain and process those messages so
                // adaptive state and counters stay exact. Feedback senders
                // terminate on forward EOS and drop the channel, ending
                // this loop. (Feedback edges must therefore not form cycles
                // among themselves.)
                while let Ok(envelope) = w.fb_rx.recv() {
                    let _ = align.handle(envelope, bolt.as_mut(), &mut w.outbox, &mut m);
                }
            }
        }
    }

    m.emitted = w.outbox.emitted;
    metrics.lock().push(m);
}
