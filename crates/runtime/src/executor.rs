//! The executor: crossbeam channels for tuple transport, punctuation
//! alignment, and end-of-stream termination, under one of two scheduling
//! modes ([`crate::SchedulerMode`]):
//!
//! * **Thread-per-task** (legacy): one OS thread per task, blocking
//!   receives over a once-built `Select`.
//! * **Pooled** (`crate::sched`, DESIGN.md §4e): a fixed pool of
//!   work-stealing workers cooperatively schedules bolt tasks; spouts (and
//!   all bolts when the recovery policy sets a receive timeout) keep
//!   dedicated threads. Every successful send notifies the receiving task
//!   through the scheduler hub, replacing blocking receives with an
//!   edge-triggered ready queue. Forward channels whose producers include a
//!   bolt become unbounded in this mode, so a cooperative task never blocks
//!   its worker on a send (spout ingress stays bounded — backpressure at
//!   the source is preserved); a consequence is that bolt-side send
//!   timeouts cannot fire under the pool.
//!
//! Semantics:
//! * Delivery is reliable and in order per (sender task, receiver task) —
//!   in-process channels give us the exactly-once processing Storm is
//!   configured to guarantee in the paper.
//! * A **punctuation** emitted by the spouts (window boundary) is aligned:
//!   a bolt task sees `on_punct(p)` only after receiving punctuation `p`
//!   from *every* forward upstream task, then forwards it downstream —
//!   windows therefore tumble consistently across the whole topology.
//! * **End of stream**: when every spout finishes, EOS tokens flow along
//!   forward edges; a bolt task finishes after EOS from all forward
//!   upstream tasks. Feedback edges carry data but never gate termination.
//! * A panicking task is reported in [`RunError::TaskPanicked`]; remaining
//!   tasks drain and shut down (disconnected channels count as EOS).
//!
//! Transport batching: tuples crossing a forward edge are accumulated in
//! per-target output buffers and shipped as one [`Envelope::Batch`] once
//! `batch_size` messages are pending for that target, amortizing the
//! per-message channel cost (lock, wakeup, envelope) over the batch.
//! Buffers are flushed *before* every punctuation and EOS token, so window
//! contents are exactly those of an unbatched run and latency is bounded by
//! window boundaries; [`Outbox::flush`] forces delivery mid-window.
//! Feedback edges bypass batching entirely — control loops (δ-updates,
//! repartition signals) stay low-latency.

use crate::fault::{self, FaultAction, FaultPanic, RecoveryPolicy, TaskFaults};
use crate::metrics::{
    self, LocalHistogram, MetricsConfig, MetricsRegistry, TaskInstruments, TaskSnapshot,
    TraceEvent, TraceKind, WindowSnapshot,
};
use crate::sched::{self, Hub, StepOutcome, TaskStep};
use crate::topology::{
    BoltFactory, Component, ComponentKind, Grouping, SchedulerMode, Subscription, Topology,
};
use crate::transport::{self, Group, ReaderPlan, WireItem};
use crate::wire::WireCodec;
use crate::{Bolt, BoltState, Spout, SpoutEmit, TaskInfo};
use crossbeam::channel::{
    bounded, unbounded, Receiver, RecvTimeoutError, Select, SendTimeoutError, Sender, TryRecvError,
};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Internal envelope moving between tasks. `pub(crate)` so the transport
/// layer can carry it across process boundaries (`crate::wire` frames are
/// its public mirror).
pub(crate) enum Envelope<M> {
    /// One data message from global task `from` (the unbatched path:
    /// `batch_size == 1`, feedback edges, and single-message flushes).
    Data(M, usize),
    /// A batch of data messages from global task `from`; never empty.
    Batch(Vec<M>, usize),
    /// Punctuation `id` from global task `from`.
    Punct(u64, usize),
    /// End of stream from global task `from`.
    Eos(usize),
}

impl<M> Envelope<M> {
    fn source_task(&self) -> usize {
        match self {
            Envelope::Data(_, f)
            | Envelope::Batch(_, f)
            | Envelope::Punct(_, f)
            | Envelope::Eos(f) => *f,
        }
    }

    /// Number of data tuples carried (0 for control tokens).
    fn data_len(&self) -> u64 {
        match self {
            Envelope::Data(..) => 1,
            Envelope::Batch(msgs, _) => msgs.len() as u64,
            _ => 0,
        }
    }
}

// Cloning supports the supervisor's replay log; payloads are `Arc`-wrapped
// in real topologies, so a clone is reference-count bumps.
impl<M: Clone> Clone for Envelope<M> {
    fn clone(&self) -> Self {
        match self {
            Envelope::Data(m, f) => Envelope::Data(m.clone(), *f),
            Envelope::Batch(ms, f) => Envelope::Batch(ms.clone(), *f),
            Envelope::Punct(p, f) => Envelope::Punct(*p, *f),
            Envelope::Eos(f) => Envelope::Eos(*f),
        }
    }
}

/// Per-task throughput counters in the legacy flat shape, reconstructed
/// from the metrics registry by [`RunReport::legacy_tasks`]. New code should
/// read [`TaskSnapshot`]s from [`RunReport::tasks`] instead.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskMetrics {
    /// Component name.
    pub component: String,
    /// Task index within the component.
    pub task: usize,
    /// Data messages received.
    pub received: u64,
    /// Data messages emitted (counting each delivered copy).
    pub emitted: u64,
    /// Data envelopes (batches) sent; an unbatched send counts as a batch
    /// of one, so `emitted / batches` is the average batch size.
    pub batches: u64,
    /// Punctuations processed.
    pub puncts: u64,
    /// Time spent inside user code (`execute` / `on_punct` / spout `next`),
    /// excluding channel waits — the task's *busy* time.
    pub busy: std::time::Duration,
}

impl TaskMetrics {
    /// Average messages per sent data envelope (0 when nothing was sent).
    pub fn avg_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.emitted as f64 / self.batches as f64
        }
    }
}

/// The outcome of a completed run: final per-task instrument snapshots, the
/// per-punctuation time series collected while the run was live (empty
/// unless [`TopologyBuilder::metrics`](crate::TopologyBuilder::metrics) was
/// enabled), and the retained window-lifecycle trace.
#[derive(Debug)]
pub struct RunReport {
    /// Final snapshot of every task's instruments, in global task order.
    pub tasks: Vec<TaskSnapshot>,
    /// One whole-registry snapshot per fully-aligned punctuation, ascending
    /// by window id. Counters are cumulative, so the series is monotone.
    pub windows: Vec<WindowSnapshot>,
    /// Retained window-lifecycle trace events, oldest first.
    pub trace: Vec<TraceEvent>,
    /// Peak resident-set size of this process in bytes, sampled when the
    /// run finished (`VmHWM`; 0 on platforms without `/proc`). A run that
    /// spills should show this staying near the configured budget while
    /// `spill_bytes` grows.
    pub peak_rss: u64,
}

/// Peak resident-set size (`VmHWM`) of the current process in bytes; 0 when
/// the platform has no `/proc/self/status`.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().strip_suffix("kB"))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

impl RunReport {
    /// Sum of one core counter over one component's tasks.
    fn sum(&self, component: &str, counter: &str) -> u64 {
        self.tasks
            .iter()
            .filter(|t| t.component == component)
            .map(|t| t.counter(counter))
            .sum()
    }

    /// Sum of received counts for one component.
    pub fn received(&self, component: &str) -> u64 {
        self.sum(component, "received")
    }

    /// Sum of emitted counts for one component.
    pub fn emitted(&self, component: &str) -> u64 {
        self.sum(component, "emitted")
    }

    /// Sum of sent data-envelope counts for one component.
    pub fn batches(&self, component: &str) -> u64 {
        self.sum(component, "batches")
    }

    /// Average batch size over one component's emissions (0 when idle).
    pub fn avg_batch_size(&self, component: &str) -> f64 {
        let b = self.batches(component);
        if b == 0 {
            0.0
        } else {
            self.emitted(component) as f64 / b as f64
        }
    }

    /// Per-task received counts for one component, ordered by task index.
    pub fn received_per_task(&self, component: &str) -> Vec<u64> {
        let mut v: Vec<(usize, u64)> = self
            .tasks
            .iter()
            .filter(|t| t.component == component)
            .map(|t| (t.task, t.counter("received")))
            .collect();
        v.sort();
        v.into_iter().map(|(_, r)| r).collect()
    }

    /// Sum of one (named or core) counter across every task.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.tasks.iter().map(|t| t.counter(name)).sum()
    }

    /// Sum of one counter over one component's tasks.
    pub fn component_counter(&self, component: &str, name: &str) -> u64 {
        self.sum(component, name)
    }

    /// Total fault events recorded across the run: every `faults_*` counter
    /// (injected crashes, drops, delays, stalls, fences, skipped work,
    /// reroutes, channel timeouts) summed over all tasks.
    pub fn total_faults(&self) -> u64 {
        self.prefix_total("faults_")
    }

    /// Total recovery events recorded across the run: every `recoveries_*`
    /// counter (attempted/succeeded restarts, replayed envelopes) summed
    /// over all tasks.
    pub fn total_recoveries(&self) -> u64 {
        self.prefix_total("recoveries_")
    }

    fn prefix_total(&self, prefix: &str) -> u64 {
        self.tasks
            .iter()
            .flat_map(|t| t.counters.iter())
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// The final per-task counters in the legacy flat [`TaskMetrics`] shape.
    pub fn legacy_tasks(&self) -> Vec<TaskMetrics> {
        self.tasks
            .iter()
            .map(|t| TaskMetrics {
                component: t.component.clone(),
                task: t.task,
                received: t.counter("received"),
                emitted: t.counter("emitted"),
                batches: t.counter("batches"),
                puncts: t.counter("puncts"),
                busy: Duration::from_nanos(t.counter("busy_ns")),
            })
            .collect()
    }

    /// Write the report as JSON lines: one record per `(window, task)`, one
    /// final record per task, one run-level memory record, then one record
    /// per retained trace event.
    pub fn write_jsonl<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        metrics::write_jsonl(out, &self.windows, &self.tasks, &self.trace)?;
        writeln!(
            out,
            "{{\"run\":{{\"peak_rss_bytes\":{},\"spill_bytes\":{},\"spill_segments\":{},\"compactions\":{}}}}}",
            self.peak_rss,
            self.counter_total("spill_bytes"),
            self.counter_total("spill_segments"),
            self.counter_total("compactions"),
        )
    }

    /// Render the per-component human summary table, with a run-level
    /// memory footer (peak RSS and, when the out-of-core tier engaged,
    /// total spilled bytes and read-back traffic).
    pub fn summary_table(&self) -> String {
        let mut out = metrics::summary_table(&self.tasks);
        out.push_str(&format!(
            "peak rss {:.1} MiB",
            self.peak_rss as f64 / (1024.0 * 1024.0)
        ));
        let spilled = self.counter_total("spill_bytes");
        if spilled > 0 {
            out.push_str(&format!(
                " | spilled {:.1} MiB in {} segments, {} block reads, {} compactions",
                spilled as f64 / (1024.0 * 1024.0),
                self.counter_total("spill_segments"),
                self.counter_total("segment_reads"),
                self.counter_total("compactions"),
            ));
        }
        out.push('\n');
        out
    }
}

/// Errors surfaced by [`run`] / [`run_distributed`].
#[derive(Debug)]
pub enum RunError {
    /// One or more tasks panicked; the payload lists `component[task]`.
    TaskPanicked(Vec<String>),
    /// The transport layer failed: handshake rejection, a peer process
    /// dying mid-run, or a corrupt/mismatched frame. Survivors complete
    /// their windows (the quorum shrinks), then the run reports this so a
    /// group leader can re-run the attempt.
    Transport(Vec<String>),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::TaskPanicked(tasks) => {
                write!(f, "tasks panicked: {}", tasks.join(", "))
            }
            RunError::Transport(errs) => {
                write!(f, "transport failed: {}", errs.join("; "))
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Shared fence flags for degraded mode: one per global task, raised when a
/// task's retries are exhausted. Producers consult them to route around the
/// dead task; the `any` flag keeps the no-fence hot path to a single
/// relaxed load.
pub(crate) struct FenceState {
    flags: Vec<AtomicBool>,
    any: AtomicBool,
}

impl FenceState {
    fn new(total: usize) -> Self {
        FenceState {
            flags: (0..total).map(|_| AtomicBool::new(false)).collect(),
            any: AtomicBool::new(false),
        }
    }

    fn fence(&self, global: usize) {
        self.flags[global].store(true, Ordering::Release);
        self.any.store(true, Ordering::Release);
    }

    #[inline]
    fn any_fenced(&self) -> bool {
        self.any.load(Ordering::Relaxed)
    }

    #[inline]
    fn is_fenced(&self, global: usize) -> bool {
        self.flags[global].load(Ordering::Relaxed)
    }
}

/// One end of an edge as seen by a producer: either the in-process channel
/// of a task on this worker, or the writer queue of the socket link to the
/// peer process hosting it. Producers route by global task id either way —
/// placement changes which arm an edge takes, never the topology.
pub(crate) enum EdgeTx<M> {
    /// Same process: a crossbeam channel sender.
    Local(Sender<Envelope<M>>),
    /// Peer process: enqueue on the link's writer thread.
    Remote {
        tx: Sender<WireItem<M>>,
        /// Receiving global task id (carried in the frame header).
        target: usize,
        /// Routed into the receiver's feedback channel over there.
        feedback: bool,
    },
}

/// Send with an optional bounded-retry timeout: each expiry counts into
/// `timeout_hits` and doubles the wait (capped at 64x) rather than blocking
/// forever on a wedged downstream. Under the pooled scheduler, `notify`
/// carries `(hub, target global)` and a successful send marks the receiving
/// task ready — the single choke point every envelope delivery funnels
/// through.
fn send_env<M>(
    tx: &EdgeTx<M>,
    env: Envelope<M>,
    timeout: Option<Duration>,
    timeout_hits: &mut u64,
    notify: Option<(&Hub, usize)>,
) -> bool {
    let tx = match tx {
        EdgeTx::Local(tx) => tx,
        EdgeTx::Remote {
            tx,
            target,
            feedback,
        } => {
            // The writer queue is unbounded and drained unconditionally
            // (even on a dead link), so remote sends never block a worker
            // and never fail while the run is live — emitted counts stay
            // deterministic regardless of peer health. Backpressure is
            // applied at the *receiving* side, where the reader's blocking
            // forward into a bounded local channel stalls the socket.
            // Notification happens on the receiving worker's hub.
            return tx
                .send(WireItem::Env {
                    target: *target,
                    feedback: *feedback,
                    env,
                })
                .is_ok();
        }
    };
    let ok = match timeout {
        None => tx.send(env).is_ok(),
        Some(base) => {
            let mut env = env;
            let mut cur = base;
            loop {
                match tx.send_timeout(env, cur) {
                    Ok(()) => break true,
                    Err(SendTimeoutError::Timeout(e)) => {
                        env = e;
                        *timeout_hits += 1;
                        cur = (cur * 2).min(base * 64);
                    }
                    Err(SendTimeoutError::Disconnected(_)) => break false,
                }
            }
        }
    };
    if ok {
        if let Some((hub, target)) = notify {
            hub.notify(target);
        }
    }
    ok
}

/// One outgoing subscription as seen by a producer task.
struct OutEdge<M> {
    grouping: Grouping<M>,
    /// Sender to each task of the subscribing component (local channel or
    /// socket writer queue, per placement).
    targets: Vec<EdgeTx<M>>,
    /// Global task id behind each sender (fence lookups in degraded mode).
    target_globals: Vec<usize>,
    /// Pending messages per target; flushed at `batch_size`, punctuation,
    /// EOS, and [`Outbox::flush`]. Unused (left unallocated) on the
    /// unbatched paths.
    bufs: Vec<Vec<M>>,
    /// Next shuffle target; always `< targets.len()` so target selection
    /// needs no modulo on the send path.
    cursor: usize,
    /// Feedback edges bypass batching: control loops stay low-latency and
    /// their channels unbounded (bounding a cycle could deadlock).
    feedback: bool,
}

impl<M> OutEdge<M> {
    /// Queue `msg` for `target`, shipping the buffer once it holds
    /// `batch_size` messages. Unbatched edges (`batch_size == 1`, feedback)
    /// send immediately without touching the buffers.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        target: usize,
        msg: M,
        from: usize,
        batch_size: usize,
        emitted: &mut u64,
        batches: &mut u64,
        timeout: Option<Duration>,
        timeout_hits: &mut u64,
        sched: Option<&Hub>,
    ) {
        if batch_size <= 1 || self.feedback {
            if send_env(
                &self.targets[target],
                Envelope::Data(msg, from),
                timeout,
                timeout_hits,
                sched.map(|h| (h, self.target_globals[target])),
            ) {
                *emitted += 1;
                *batches += 1;
            }
            return;
        }
        let buf = &mut self.bufs[target];
        if buf.capacity() == 0 {
            buf.reserve_exact(batch_size);
        }
        buf.push(msg);
        if buf.len() >= batch_size {
            Self::flush_target(
                &self.targets,
                &mut self.bufs,
                &self.target_globals,
                target,
                batch_size,
                from,
                emitted,
                batches,
                timeout,
                timeout_hits,
                sched,
            );
        }
    }

    /// Ship whatever is pending for `target` (no-op on an empty buffer).
    #[allow(clippy::too_many_arguments)]
    fn flush_target(
        targets: &[EdgeTx<M>],
        bufs: &mut [Vec<M>],
        globals: &[usize],
        target: usize,
        batch_size: usize,
        from: usize,
        emitted: &mut u64,
        batches: &mut u64,
        timeout: Option<Duration>,
        timeout_hits: &mut u64,
        sched: Option<&Hub>,
    ) {
        let buf = &mut bufs[target];
        let notify = sched.map(|h| (h, globals[target]));
        match buf.len() {
            0 => {}
            1 => {
                let msg = buf.pop().expect("length checked");
                if send_env(
                    &targets[target],
                    Envelope::Data(msg, from),
                    timeout,
                    timeout_hits,
                    notify,
                ) {
                    *emitted += 1;
                    *batches += 1;
                }
            }
            n => {
                let full = std::mem::replace(buf, Vec::with_capacity(batch_size));
                if send_env(
                    &targets[target],
                    Envelope::Batch(full, from),
                    timeout,
                    timeout_hits,
                    notify,
                ) {
                    *emitted += n as u64;
                    *batches += 1;
                }
            }
        }
    }

    /// Ship every pending buffer of this edge.
    #[allow(clippy::too_many_arguments)]
    fn flush_all(
        &mut self,
        from: usize,
        batch_size: usize,
        emitted: &mut u64,
        batches: &mut u64,
        timeout: Option<Duration>,
        timeout_hits: &mut u64,
        sched: Option<&Hub>,
    ) {
        if self.bufs.iter().all(Vec::is_empty) {
            return;
        }
        for t in 0..self.targets.len() {
            Self::flush_target(
                &self.targets,
                &mut self.bufs,
                &self.target_globals,
                t,
                batch_size,
                from,
                emitted,
                batches,
                timeout,
                timeout_hits,
                sched,
            );
        }
    }

    /// Degraded-mode routing: if `target` is fenced, take the next live
    /// task in ring order (deterministic rehash over the survivors — equal
    /// fields-grouping keys keep landing together). `None` when every
    /// target is fenced.
    fn route_live(&self, target: usize, fences: &FenceState) -> Option<usize> {
        let n = self.targets.len();
        for off in 0..n {
            let t = (target + off) % n;
            if !fences.is_fenced(self.target_globals[t]) {
                return Some(t);
            }
        }
        None
    }
}

/// The producer-side API handed to spouts and bolts.
pub struct Outbox<M> {
    my_global: usize,
    edges: Vec<OutEdge<M>>,
    /// Messages per transport batch on forward edges (1 = unbatched).
    batch_size: usize,
    emitted: u64,
    batches: u64,
    /// Monotone count of `punctuate` calls. During post-crash replay it is
    /// rewound to the snapshot's value and all output is suppressed until
    /// it catches back up to `replay_until` — the already-delivered prefix
    /// (data and punctuation tokens alike) is not re-sent, so downstream
    /// window boundaries stay exact.
    punct_seq: u64,
    /// Replay watermark; `punct_seq < replay_until` means output is
    /// suppressed. Equal outside replay.
    replay_until: u64,
    /// Send timeout from the recovery policy (None = block forever).
    send_timeout: Option<Duration>,
    /// Send-timeout expiries (published as `faults_send_timeouts`).
    timeout_hits: u64,
    /// Degraded-mode fence table (None unless the policy enables it).
    fences: Option<Arc<FenceState>>,
    /// Messages rerouted around fenced tasks (`faults_rerouted`).
    rerouted: u64,
    /// Messages dropped because every candidate target was fenced, or a
    /// direct-grouped target was fenced (`faults_fenced_drops`).
    fenced_drops: u64,
    /// Pooled-scheduler hub (None under thread-per-task): every successful
    /// send notifies the receiving task's ready state through it.
    sched: Option<Arc<Hub>>,
}

impl<M: Clone> Outbox<M> {
    /// Output suppressed: a supervised replay is rebuilding bolt state over
    /// an already-delivered output prefix.
    #[inline]
    fn replaying(&self) -> bool {
        self.punct_seq < self.replay_until
    }

    /// Enter replay mode: discard the crashed incarnation's unshipped
    /// buffers (replay regenerates them) and suppress output until the
    /// punctuation sequence catches back up to what was already delivered.
    fn begin_replay(&mut self, snap_punct_seq: u64) {
        for edge in &mut self.edges {
            for buf in &mut edge.bufs {
                buf.clear();
            }
        }
        self.replay_until = self.punct_seq;
        self.punct_seq = snap_punct_seq;
    }

    /// Emit `msg` to every non-direct subscription, routed per grouping.
    /// Each delivery clones; callers stream `Arc`-wrapped payloads, so a
    /// clone is a reference-count bump. Delivery may be deferred until the
    /// target's buffer fills, the next punctuation/EOS, or [`Outbox::flush`].
    pub fn emit(&mut self, msg: M) {
        let Outbox {
            my_global,
            edges,
            batch_size,
            emitted,
            batches,
            punct_seq,
            replay_until,
            send_timeout,
            timeout_hits,
            fences,
            rerouted,
            fenced_drops,
            sched,
        } = self;
        if *punct_seq < *replay_until {
            return; // replaying an already-delivered prefix
        }
        let (from, bs, to) = (*my_global, *batch_size, *send_timeout);
        let sched = sched.as_deref();
        let fences = fences.as_deref().filter(|f| f.any_fenced());
        for edge in edges.iter_mut() {
            let n = edge.targets.len();
            let target = match &edge.grouping {
                Grouping::Direct => continue,
                // Whole batches round-robin across the subscriber's tasks:
                // the cursor advances when the current target's batch ships.
                Grouping::Shuffle => edge.cursor,
                Grouping::Fields(key) => (key(&msg) % n as u64) as usize,
                Grouping::Global => 0,
                Grouping::All => {
                    for t in 0..n {
                        if let Some(f) = fences {
                            if f.is_fenced(edge.target_globals[t]) {
                                *fenced_drops += 1;
                                continue;
                            }
                        }
                        edge.push(
                            t,
                            msg.clone(),
                            from,
                            bs,
                            emitted,
                            batches,
                            to,
                            timeout_hits,
                            sched,
                        );
                    }
                    continue;
                }
            };
            let target = match fences {
                None => target,
                Some(f) => match edge.route_live(target, f) {
                    Some(t) => {
                        if t != target {
                            *rerouted += 1;
                        }
                        t
                    }
                    None => {
                        *fenced_drops += 1;
                        continue;
                    }
                },
            };
            edge.push(
                target,
                msg.clone(),
                from,
                bs,
                emitted,
                batches,
                to,
                timeout_hits,
                sched,
            );
            if matches!(edge.grouping, Grouping::Shuffle)
                && (bs <= 1 || edge.feedback || edge.bufs[target].is_empty())
            {
                edge.cursor = if target + 1 == n { 0 } else { target + 1 };
            }
        }
    }

    /// Emit `msg` to task `task` of every direct-grouped subscription. In
    /// degraded mode a fenced direct target drops the message (the producer
    /// chose that exact task; rerouting would break direct semantics).
    pub fn emit_direct(&mut self, task: usize, msg: M) {
        let Outbox {
            my_global,
            edges,
            batch_size,
            emitted,
            batches,
            punct_seq,
            replay_until,
            send_timeout,
            timeout_hits,
            fences,
            fenced_drops,
            sched,
            ..
        } = self;
        if *punct_seq < *replay_until {
            return;
        }
        let sched = sched.as_deref();
        let fences = fences.as_deref().filter(|f| f.any_fenced());
        for edge in edges.iter_mut() {
            if matches!(edge.grouping, Grouping::Direct) && task < edge.targets.len() {
                if let Some(f) = fences {
                    if f.is_fenced(edge.target_globals[task]) {
                        *fenced_drops += 1;
                        continue;
                    }
                }
                edge.push(
                    task,
                    msg.clone(),
                    *my_global,
                    *batch_size,
                    emitted,
                    batches,
                    *send_timeout,
                    timeout_hits,
                    sched,
                );
            }
        }
    }

    /// Ship every pending output buffer immediately. Emission already
    /// flushes at `batch_size`, punctuation, and EOS; call this to bound
    /// latency mid-window (e.g. before blocking on external work).
    pub fn flush(&mut self) {
        let Outbox {
            my_global,
            edges,
            batch_size,
            emitted,
            batches,
            punct_seq,
            replay_until,
            send_timeout,
            timeout_hits,
            sched,
            ..
        } = self;
        if *punct_seq < *replay_until {
            return;
        }
        for edge in edges.iter_mut() {
            edge.flush_all(
                *my_global,
                *batch_size,
                emitted,
                batches,
                *send_timeout,
                timeout_hits,
                sched.as_deref(),
            );
        }
    }

    /// Data buffered ahead of a punctuation belongs to the closing window:
    /// flush before sending the token so per-channel FIFO keeps windows
    /// exactly as an unbatched run would see them.
    fn punctuate(&mut self, p: u64) {
        if self.replaying() {
            // This window's output (data and token) was delivered by the
            // crashed incarnation; advance the sequence without re-sending.
            self.punct_seq += 1;
            return;
        }
        self.punct_seq += 1;
        self.flush();
        let Outbox {
            my_global,
            edges,
            send_timeout,
            timeout_hits,
            sched,
            ..
        } = self;
        let sched = sched.as_deref();
        for edge in edges.iter_mut() {
            for (t, &g) in edge.targets.iter().zip(&edge.target_globals) {
                let _ = send_env(
                    t,
                    Envelope::Punct(p, *my_global),
                    *send_timeout,
                    timeout_hits,
                    sched.map(|h| (h, g)),
                );
            }
        }
    }

    fn eos(&mut self) {
        self.flush();
        let Outbox {
            my_global,
            edges,
            send_timeout,
            timeout_hits,
            sched,
            ..
        } = self;
        let sched = sched.as_deref();
        for edge in edges.iter_mut() {
            for (t, &g) in edge.targets.iter().zip(&edge.target_globals) {
                let _ = send_env(
                    t,
                    Envelope::Eos(*my_global),
                    *send_timeout,
                    timeout_hits,
                    sched.map(|h| (h, g)),
                );
            }
        }
    }
}

// Dropping an outbox is how an in-process task signals "no more traffic
// from me" — its channel sender clones disconnect. Remote edges need the
// same signal explicitly: one `Close` frame per remote (target, edge),
// which the peer's reader counts down before dropping its local sender
// clone for that channel. Without this, cross-process *feedback* edges
// would keep both processes' feedback drains alive in a shutdown cycle.
// Runs on normal completion and on unwind alike, mirroring channel drops.
impl<M> Drop for Outbox<M> {
    fn drop(&mut self) {
        for edge in &self.edges {
            for t in &edge.targets {
                if let EdgeTx::Remote {
                    tx,
                    target,
                    feedback,
                } = t
                {
                    let _ = tx.send(WireItem::Close {
                        target: *target,
                        from: self.my_global,
                        feedback: *feedback,
                    });
                }
            }
        }
    }
}

/// Queue-depth load shedder on one bolt's forward input (installed via
/// [`crate::TopologyBuilder::shed`]). Consulted immediately after each
/// forward receive, *before* the supervisor's fault clock and replay log
/// see the envelope — a shed envelope is invisible to recovery, so replay
/// after a crash never resurrects dropped work. Only envelopes whose
/// messages all satisfy the predicate are ever dropped; punctuation and
/// EOS always pass, so window alignment is untouched.
struct Shedder<M> {
    budget: usize,
    predicate: crate::topology::ShedPredicate<M>,
    offered: u64,
    dropped: u64,
    passed: u64,
}

impl<M> Shedder<M> {
    fn new(spec: &crate::topology::ShedSpec<M>) -> Self {
        Shedder {
            budget: spec.budget,
            predicate: Arc::clone(&spec.predicate),
            offered: 0,
            dropped: 0,
            passed: 0,
        }
    }

    /// Account `env` against the observed queue `depth`; true = drop it.
    fn consider(&mut self, env: &Envelope<M>, depth: usize) -> bool {
        let n = env.data_len();
        if n == 0 {
            return false;
        }
        self.offered += n;
        let drop = depth > self.budget
            && match env {
                Envelope::Data(m, _) => (self.predicate)(m),
                Envelope::Batch(msgs, _) => msgs.iter().all(|m| (self.predicate)(m)),
                _ => false,
            };
        if drop {
            self.dropped += n;
        } else {
            self.passed += n;
        }
        drop
    }

    /// Fold the conservation counters into the task's instruments
    /// (offered = dropped + passed, counting messages).
    fn publish(&self, inst: &TaskInstruments) {
        inst.counter("shed_offered").add(self.offered);
        inst.counter("shed_dropped").add(self.dropped);
        inst.counter("shed_passed").add(self.passed);
    }
}

struct TaskWiring<M> {
    info: TaskInfo,
    rx: Receiver<Envelope<M>>,
    outbox: Outbox<M>,
    fb_rx: Receiver<Envelope<M>>,
    /// Global ids of forward upstream tasks (gate punct/EOS).
    forward_upstreams: Vec<usize>,
    /// The component subscribes to at least one feedback edge: after EOS it
    /// drains in-flight control traffic until every sender disconnects.
    has_feedback_upstream: bool,
    kind: TaskKind<M>,
    /// This task's instrument set in the run's metrics registry.
    inst: Arc<TaskInstruments>,
    /// Window-close notifications to the collector thread (present only
    /// when full metrics collection is on).
    notify: Option<Sender<u64>>,
    /// The bolt's factory (None for spouts): supervised restarts rebuild
    /// the instance from it.
    factory: Option<BoltFactory<M>>,
    /// Faults from the run's plan aimed at this task.
    faults: TaskFaults,
    /// The run's recovery policy.
    policy: RecoveryPolicy,
    /// Degraded-mode fence table (present only when the policy enables it).
    fences: Option<Arc<FenceState>>,
    /// Load shedder on the forward input (None for spouts and unshedded
    /// bolts — the common case).
    shed: Option<Shedder<M>>,
}

/// The executor's task-local metering state: plain (non-atomic) counters and
/// histograms on the hot path, published into the shared [`TaskInstruments`]
/// only at window boundaries and at end of stream.
struct TaskMeter {
    stats: TaskMetrics,
    handle_hist: LocalHistogram,
    close_hist: LocalHistogram,
    inst: Arc<TaskInstruments>,
    /// Full collection (histograms, traces, per-window snapshots) on?
    enabled: bool,
    /// Windows closed during the current receive step, pending publication
    /// and collector notification (always empty when collection is off).
    closed: Vec<u64>,
}

impl TaskMeter {
    fn new(info: &TaskInfo, inst: Arc<TaskInstruments>) -> Self {
        TaskMeter {
            stats: TaskMetrics {
                component: info.component.clone(),
                task: info.task_index,
                ..TaskMetrics::default()
            },
            handle_hist: LocalHistogram::new(),
            close_hist: LocalHistogram::new(),
            enabled: inst.enabled(),
            inst,
            closed: Vec::new(),
        }
    }

    /// Record a processed window boundary (close-to-emit span `dur`).
    fn window_closed(&mut self, p: u64, dur: Duration) {
        if !self.enabled {
            return;
        }
        self.close_hist.record_ns(dur.as_nanos() as u64);
        self.inst.trace(TraceKind::WindowClose, p, dur);
        self.closed.push(p);
    }

    /// Publish all task-local state into the shared instrument set.
    fn publish(&self, emitted: u64, batches: u64) {
        self.inst.publish_core(
            self.stats.received,
            emitted,
            batches,
            self.stats.puncts,
            self.stats.busy.as_nanos() as u64,
        );
        if self.enabled {
            self.inst
                .publish_histograms(&self.handle_hist, &self.close_hist);
        }
    }

    /// Window-boundary bookkeeping after a receive step that closed one or
    /// more windows: sample queue depth, publish locals, notify collector.
    #[cold]
    fn flush_windows(
        &mut self,
        emitted: u64,
        batches: u64,
        queue_depth: usize,
        notify: &Option<Sender<u64>>,
    ) {
        self.inst.queue_depth_gauge().set(queue_depth as i64);
        self.publish(emitted, batches);
        for w in self.closed.drain(..) {
            if let Some(tx) = notify {
                let _ = tx.send(w);
            }
        }
    }
}

enum TaskKind<M> {
    Spout(Box<dyn Spout<M>>),
    Bolt(Box<dyn Bolt<M>>),
}

/// The bolt swapped in for a fenced task in degraded mode: discards data
/// (counting it as `faults_skipped`) while the surrounding machinery keeps
/// aligning and forwarding punctuation/EOS, so downstream windows still
/// close. It runs no user code and therefore cannot re-panic.
struct DiscardBolt {
    skipped: Arc<metrics::Counter>,
}

impl<M: Send> Bolt<M> for DiscardBolt {
    fn execute(&mut self, _msg: M, _out: &mut Outbox<M>) {
        self.skipped.inc();
    }
}

/// Nudges a dedicated-thread task's pooled downstream when the thread exits
/// (normally or by panic) so they observe its dropped senders — pooled tasks
/// never block in `recv`, so a disconnect is only visible on a wakeup.
struct RetireGuard {
    hub: Option<Arc<Hub>>,
    global: usize,
}

impl Drop for RetireGuard {
    fn drop(&mut self) {
        if let Some(hub) = &self.hub {
            hub.retire_external(self.global);
        }
    }
}

/// Run a topology to completion and report per-task metrics.
pub fn run<M: Clone + Send + 'static>(topology: Topology<M>) -> Result<RunReport, RunError> {
    run_inner(topology, None)
}

/// This process's slice of a distributed run: the shared-dictionary codec,
/// the joined process group, and the hosting worker per global task id.
struct DistCtx<M> {
    codec: Arc<dyn WireCodec<M>>,
    group: Group,
    placement: Vec<usize>,
}

/// Run this worker's shard of `topology` across a joined process group.
///
/// `placement` maps `(component name, task index)` to a hosting worker id
/// and must be the same pure function on every worker: each process derives
/// the identical full placement, wires edges to co-located tasks as
/// in-process channels and edges to remote tasks as socket links, and runs
/// only the tasks placed on it. Global task numbering is unchanged by
/// placement, per-(sender, receiver) FIFO holds across each link, and batch
/// boundaries survive the wire — so punctuation alignment, EOS termination,
/// and per-window contents are exactly those of the single-process run.
///
/// A peer process dying mid-run shrinks the punctuation/EOS quorum (its
/// reader synthesizes EOS) so survivors complete cleanly, and the run
/// returns [`RunError::Transport`] for the group leader to retry.
pub fn run_distributed<M: Clone + Send + 'static>(
    topology: Topology<M>,
    codec: Arc<dyn WireCodec<M>>,
    group: Group,
    placement: &dyn Fn(&str, usize) -> usize,
) -> Result<RunReport, RunError> {
    let workers = group.workers();
    let mut place: Vec<usize> = Vec::new();
    for c in &topology.components {
        for task in 0..c.parallelism {
            let w = placement(&c.name, task);
            assert!(
                w < workers,
                "placement put {}[{task}] on worker {w} of a {workers}-worker group",
                c.name
            );
            place.push(w);
        }
    }
    run_inner(
        topology,
        Some(DistCtx {
            codec,
            group,
            placement: place,
        }),
    )
}

fn run_inner<M: Clone + Send + 'static>(
    topology: Topology<M>,
    dist: Option<DistCtx<M>>,
) -> Result<RunReport, RunError> {
    let mut dist = dist;
    let Topology {
        components,
        index,
        channel_capacity,
        batch_size,
        metrics: metrics_on,
        trace_capacity,
        fault_plan,
        recovery,
        scheduler,
        shed,
    } = topology;
    let mut registry = MetricsRegistry::new(MetricsConfig {
        enabled: metrics_on,
        trace_capacity,
    });

    // Global task numbering: components in order, tasks within.
    let mut base: Vec<usize> = Vec::with_capacity(components.len());
    let mut total = 0usize;
    for c in &components {
        base.push(total);
        total += c.parallelism;
    }

    // Placement: which worker hosts each global task (everything on worker
    // 0 in a single-process run). Only local tasks are instantiated here;
    // remote ones exist as frame targets behind the peer links.
    let my_worker = dist.as_ref().map_or(0, |d| d.group.my_worker());
    let group_workers = dist.as_ref().map_or(1, |d| d.group.workers());
    let placement: Vec<usize> = match &dist {
        Some(d) => d.placement.clone(),
        None => vec![0; total],
    };
    debug_assert_eq!(placement.len(), total);
    let local: Vec<bool> = placement.iter().map(|&w| w == my_worker).collect();
    let n_local = local.iter().filter(|&&l| l).count();

    // Pooled-scheduler task classification (DESIGN.md §4e). Spouts always
    // get a dedicated thread: their bounded forward sends are the
    // topology's ingress backpressure and may block. Bolts are
    // pool-scheduled, except when the recovery policy sets a receive
    // timeout — its idle-detection semantics need a blocking timed receive,
    // so such runs keep dedicated threads everywhere (the pool engages only
    // when it has at least one task).
    let is_spout: Vec<bool> = components
        .iter()
        .map(|c| matches!(c.kind, ComponentKind::Spout(_)))
        .collect();
    let pool_requested = matches!(scheduler, SchedulerMode::Pooled { .. });
    let mut pooled_flags: Vec<bool> = Vec::with_capacity(total);
    for (ci, c) in components.iter().enumerate() {
        let pooled = pool_requested && !is_spout[ci] && recovery.recv_timeout.is_none();
        for task in 0..c.parallelism {
            // Remote tasks run in their own process; here they are neither
            // pooled nor threaded, and notifying them is a no-op.
            pooled_flags.push(pooled && local[base[ci] + task]);
        }
    }
    let n_pooled = pooled_flags.iter().filter(|&&p| p).count();
    let use_pool = n_pooled > 0;
    let (req_workers, pin_cores) = match scheduler {
        SchedulerMode::Pooled { workers, pin_cores } => (workers, pin_cores),
        SchedulerMode::ThreadPerTask => (0, false),
    };
    let n_workers = if use_pool {
        sched::resolve_workers(req_workers, n_pooled)
    } else {
        0
    };

    // Two channels per task: a *bounded* one for forward traffic (the
    // forward graph is a DAG, so bounded sends give deadlock-free
    // backpressure — a flooding spout is throttled by its slowest consumer;
    // with batching, in-flight data is bounded by `capacity × batch_size`
    // per channel) and an *unbounded* one for feedback control traffic
    // (bounding a cycle could deadlock).
    //
    // Under the pool, a bolt's send must never block its worker (a blocked
    // worker would strand every task queued behind it), so any forward
    // channel fed by a pool-scheduled bolt becomes unbounded; only
    // spout-fed channels keep the bounded ingress backpressure. In-flight
    // data stays proportional to window contents because bolts only emit
    // in response to input the spout boundary already throttles.
    let mut bolt_fed: Vec<bool> = vec![false; components.len()];
    for (ci, c) in components.iter().enumerate() {
        for s in &c.subscriptions {
            if !s.feedback && !is_spout[index[&s.source]] {
                bolt_fed[ci] = true;
            }
        }
    }
    let cap = channel_capacity;
    let mut fwd_senders: Vec<Sender<Envelope<M>>> = Vec::with_capacity(total);
    let mut fwd_receivers: Vec<Option<Receiver<Envelope<M>>>> = Vec::with_capacity(total);
    let mut fb_senders: Vec<Sender<Envelope<M>>> = Vec::with_capacity(total);
    let mut fb_receivers: Vec<Option<Receiver<Envelope<M>>>> = Vec::with_capacity(total);
    for (ci, c) in components.iter().enumerate() {
        for _ in 0..c.parallelism {
            let (tx, rx) = if use_pool && bolt_fed[ci] {
                unbounded()
            } else {
                bounded(cap)
            };
            fwd_senders.push(tx);
            fwd_receivers.push(Some(rx));
            let (tx, rx) = unbounded();
            fb_senders.push(tx);
            fb_receivers.push(Some(rx));
        }
    }

    // One writer queue per peer worker: every local producer's edges to
    // tasks hosted there funnel through one link-owned writer thread.
    // Unbounded so cooperative sends never block (see `EdgeTx::Remote`).
    let mut writer_txs: Vec<Option<Sender<WireItem<M>>>> =
        (0..group_workers).map(|_| None).collect();
    let mut writer_rxs: Vec<Option<Receiver<WireItem<M>>>> =
        (0..group_workers).map(|_| None).collect();
    if dist.is_some() {
        for w in 0..group_workers {
            if w != my_worker {
                let (tx, rx) = unbounded();
                writer_txs[w] = Some(tx);
                writer_rxs[w] = Some(rx);
            }
        }
    }

    // Outgoing edges per component: (grouping, subscriber component index).
    let mut out_edges: Vec<Vec<(Grouping<M>, usize, bool)>> = vec![Vec::new(); components.len()];
    for (ci, c) in components.iter().enumerate() {
        for Subscription {
            source,
            grouping,
            feedback,
        } in &c.subscriptions
        {
            let si = index[source];
            out_edges[si].push((grouping.clone(), ci, *feedback));
        }
    }

    // Forward upstream task lists per component, and feedback presence.
    let mut forward_upstreams: Vec<Vec<usize>> = vec![Vec::new(); components.len()];
    let mut has_feedback: Vec<bool> = vec![false; components.len()];
    for (ci, c) in components.iter().enumerate() {
        for s in &c.subscriptions {
            if s.feedback {
                has_feedback[ci] = true;
            } else {
                let si = index[&s.source];
                for t in 0..components[si].parallelism {
                    forward_upstreams[ci].push(base[si] + t);
                }
            }
        }
    }

    // Degraded mode shares one fence table across every producer.
    let fences: Option<Arc<FenceState>> =
        recovery.degraded.then(|| Arc::new(FenceState::new(total)));

    // Build task wirings.
    let par: Vec<usize> = components.iter().map(|c| c.parallelism).collect();

    // The pool's shared hub: task state machines, the injector, and the
    // parking protocol. Every outbox (dedicated-thread producers included)
    // carries it so each successful send notifies its pool-scheduled
    // target; notifications to dedicated tasks are no-ops.
    let hub: Option<Arc<Hub>> = use_pool.then(|| {
        let mut downstream: Vec<Vec<usize>> = Vec::with_capacity(total);
        let mut labels: Vec<String> = Vec::with_capacity(total);
        for (ci, c) in components.iter().enumerate() {
            let targets: Vec<usize> = out_edges[ci]
                .iter()
                .flat_map(|(_, target_ci, _)| (0..par[*target_ci]).map(|t| base[*target_ci] + t))
                .collect();
            for task in 0..c.parallelism {
                downstream.push(targets.clone());
                labels.push(format!("{}[{}]", c.name, task));
            }
        }
        Arc::new(Hub::new(
            pooled_flags.clone(),
            downstream,
            labels,
            n_workers,
        ))
    });

    let mut wirings: Vec<TaskWiring<M>> = Vec::with_capacity(total);
    for (ci, c) in components.into_iter().enumerate() {
        let Component {
            name,
            parallelism,
            kind,
            subscriptions: _,
        } = c;
        for task in 0..parallelism {
            let global = base[ci] + task;
            if !local[global] {
                continue; // hosted by a peer process
            }
            let edges: Vec<OutEdge<M>> = out_edges[ci]
                .iter()
                .map(|(grouping, target_ci, feedback)| {
                    let n = par[*target_ci];
                    // The builder rejects zero parallelism, so every edge
                    // has at least one target; the shuffle cursor relies on
                    // this to advance without re-checking.
                    debug_assert!(n > 0, "edge to component {target_ci} has no target tasks");
                    OutEdge {
                        grouping: grouping.clone(),
                        targets: (0..n)
                            .map(|t| {
                                let g = base[*target_ci] + t;
                                if local[g] {
                                    EdgeTx::Local(if *feedback {
                                        fb_senders[g].clone()
                                    } else {
                                        fwd_senders[g].clone()
                                    })
                                } else {
                                    EdgeTx::Remote {
                                        tx: writer_txs[placement[g]]
                                            .as_ref()
                                            .expect("writer queue for peer worker")
                                            .clone(),
                                        target: g,
                                        feedback: *feedback,
                                    }
                                }
                            })
                            .collect(),
                        target_globals: (0..n).map(|t| base[*target_ci] + t).collect(),
                        bufs: (0..n).map(|_| Vec::new()).collect(),
                        // Stagger shuffle cursors per producer so k producers
                        // doing round-robin do not all hit the same target.
                        cursor: global % n,
                        feedback: *feedback,
                    }
                })
                .collect();
            let outbox = Outbox {
                my_global: global,
                edges,
                batch_size,
                emitted: 0,
                batches: 0,
                punct_seq: 0,
                replay_until: 0,
                send_timeout: recovery.send_timeout,
                timeout_hits: 0,
                fences: fences.clone(),
                rerouted: 0,
                fenced_drops: 0,
                sched: hub.clone(),
            };
            let (instance, factory) = match &kind {
                ComponentKind::Spout(f) => (TaskKind::Spout(f(task)), None),
                ComponentKind::Bolt(f) => (TaskKind::Bolt(f(task)), Some(Arc::clone(f))),
            };
            wirings.push(TaskWiring {
                info: TaskInfo {
                    component: name.clone(),
                    task_index: task,
                    parallelism,
                },
                rx: fwd_receivers[global].take().expect("receiver unclaimed"),
                fb_rx: fb_receivers[global].take().expect("fb receiver unclaimed"),
                outbox,
                forward_upstreams: forward_upstreams[ci].clone(),
                has_feedback_upstream: has_feedback[ci],
                kind: instance,
                inst: registry.register(&name, task),
                notify: None, // filled in below once the collector exists
                factory,
                faults: fault_plan.for_task(&name, task),
                policy: recovery.clone(),
                fences: fences.clone(),
                shed: shed
                    .iter()
                    .find(|spec| spec.component == name)
                    .map(Shedder::new),
            });
        }
    }
    // Per-peer reader dispatch plans, built while the executor still holds
    // sender clones. The expected-close counts mirror exactly the `Close`
    // frames the peer's outboxes will send — one per (producer task hosted
    // there, edge, local target) — because both sides derive them from the
    // same topology and placement.
    let transport_errors: Arc<std::sync::Mutex<Vec<String>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut reader_plans: Vec<Option<ReaderPlan<M>>> = (0..group_workers).map(|_| None).collect();
    if dist.is_some() {
        for (w, plan_slot) in reader_plans.iter_mut().enumerate() {
            if w == my_worker {
                continue;
            }
            let mut fwd_closes = vec![0usize; total];
            let mut fb_closes = vec![0usize; total];
            let mut eos_pairs: Vec<(usize, usize)> = Vec::new();
            for (ci, edges) in out_edges.iter().enumerate() {
                for (_, target_ci, feedback) in edges {
                    for task in 0..par[ci] {
                        let pg = base[ci] + task;
                        if placement[pg] != w {
                            continue;
                        }
                        for t in 0..par[*target_ci] {
                            let tg = base[*target_ci] + t;
                            if !local[tg] {
                                continue;
                            }
                            if *feedback {
                                fb_closes[tg] += 1;
                            } else {
                                fwd_closes[tg] += 1;
                                eos_pairs.push((pg, tg));
                            }
                        }
                    }
                }
            }
            eos_pairs.sort_unstable();
            eos_pairs.dedup();
            let fwd = (0..total)
                .map(|g| (fwd_closes[g] > 0).then(|| fwd_senders[g].clone()))
                .collect();
            let fb = (0..total)
                .map(|g| (fb_closes[g] > 0).then(|| fb_senders[g].clone()))
                .collect();
            *plan_slot = Some(ReaderPlan {
                fwd,
                fb,
                fwd_closes,
                fb_closes,
                eos_pairs,
            });
        }
    }
    drop(fwd_senders); // tasks own the only senders now (inside outboxes)
    drop(fb_senders);
    drop(fwd_receivers);
    drop(fb_receivers);

    // Pool workers own a `scheduler_*` instrument family (steals, parks,
    // wakeups, injector-depth gauge), one set per worker under the
    // `scheduler` component, registered before the registry freezes.
    let sched_insts: Vec<Arc<TaskInstruments>> = (0..n_workers)
        .map(|w| registry.register("scheduler", w))
        .collect();

    // Each peer link owns a `transport` instrument family (bytes / frames /
    // codec time in both directions), one set per peer worker, registered
    // before the registry freezes and serialized by `--metrics-out` like
    // any task. Links never report window closes, so (like `scheduler`)
    // they sit outside the collector quorum.
    let transport_insts: Vec<Option<Arc<TaskInstruments>>> = (0..group_workers)
        .map(|w| (dist.is_some() && w != my_worker).then(|| registry.register("transport", w)))
        .collect();

    // With full collection on, a collector thread turns per-task
    // window-close notifications into per-punctuation registry snapshots:
    // once every task reported window `w`, all locals covering `w` have
    // been published and a whole-registry snapshot is consistent.
    let registry = Arc::new(registry);
    let collector = if metrics_on {
        let (tx, rx) = unbounded::<u64>();
        for w in &mut wirings {
            w.notify = Some(tx.clone());
        }
        drop(tx); // tasks hold the only senders; disconnect ends the thread
        let reg = Arc::clone(&registry);
        Some(
            std::thread::Builder::new()
                .name(sched::thread_name("collector", 0))
                .spawn(move || collect_windows(rx, reg, n_local))
                .expect("spawn collector thread"),
        )
    } else {
        None
    };

    // Partition tasks: pooled bodies install into the hub, the rest get
    // dedicated threads. Installation and pool spawning happen *before* any
    // dedicated thread starts, so a producer's first notification can never
    // claim a not-yet-installed body.
    let mut dedicated: Vec<TaskWiring<M>> = Vec::with_capacity(total - n_pooled);
    for wiring in wirings {
        // `wirings` holds only locally hosted tasks, so its positional index
        // is NOT the global task id once peers host part of the topology.
        let global = wiring.outbox.my_global;
        if pooled_flags[global] {
            let hub = hub.as_ref().expect("pooled task without a hub");
            hub.install(global, Box::new(CoopBolt::new(wiring)));
        } else {
            dedicated.push(wiring);
        }
    }
    let pool_handles = match &hub {
        Some(h) => {
            let handles = sched::spawn_pool(h, n_workers, pin_cores, sched_insts);
            h.seed();
            handles
        }
        None => Vec::new(),
    };

    // Link threads come up after pooled bodies are installed: a reader's
    // first notification must never hit a not-yet-installed body. (Frames
    // arriving before a reader starts just sit in the socket buffer — the
    // peer's writer blocks on write, which is ordinary backpressure.)
    let mut transport_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    if let Some(d) = &mut dist {
        for w in 0..group_workers {
            if w == my_worker {
                continue;
            }
            let stream = d.group.peers[w].take().expect("peer stream present");
            let insts = transport_insts[w].clone().expect("transport instruments");
            let wstream = stream.try_clone().expect("clone peer stream");
            let wrx = writer_rxs[w].take().expect("writer queue receiver");
            let wcodec = Arc::clone(&d.codec);
            let winsts = Arc::clone(&insts);
            transport_handles.push(
                std::thread::Builder::new()
                    .name(format!("wire-tx-{w}"))
                    .spawn(move || transport::writer_loop(wstream, wrx, wcodec, winsts))
                    .expect("spawn transport writer thread"),
            );
            let plan = reader_plans[w].take().expect("reader plan present");
            let rcodec = Arc::clone(&d.codec);
            let errors = Arc::clone(&transport_errors);
            let rhub = hub.clone();
            transport_handles.push(
                std::thread::Builder::new()
                    .name(format!("wire-rx-{w}"))
                    .spawn(move || {
                        transport::reader_loop(stream, rcodec, plan, rhub, errors, insts, w)
                    })
                    .expect("spawn transport reader thread"),
            );
        }
    }

    let mut handles = Vec::with_capacity(dedicated.len());
    for wiring in dedicated {
        let label = format!("{}[{}]", wiring.info.component, wiring.info.task_index);
        let global = wiring.outbox.my_global;
        let hub = hub.clone();
        let handle = std::thread::Builder::new()
            .name(label.clone())
            .spawn(move || {
                // Declared before the wiring is consumed so it drops last:
                // the nudge must follow the senders' drop — including when
                // `run_task` unwinds — for pooled downstream to observe the
                // disconnect when they wake.
                let _retire = RetireGuard { hub, global };
                run_task(wiring)
            })
            .expect("spawn task thread");
        handles.push((global, label, handle));
    }

    let mut panicked: Vec<(usize, String)> = Vec::new();
    for (global, label, handle) in handles {
        if handle.join().is_err() {
            panicked.push((global, label));
        }
    }
    for handle in pool_handles {
        handle.join().expect("pool worker thread panicked");
    }
    if let Some(h) = &hub {
        panicked.extend(h.panicked_labels());
    }
    // Report in global task order, matching the legacy executor's
    // spawn-order reporting regardless of which side a task ran on.
    panicked.sort();
    let panicked: Vec<String> = panicked.into_iter().map(|(_, label)| label).collect();
    // Every local task is done and its outbox dropped: all `Close` frames
    // are queued. Dropping the executor's writer-queue senders lets each
    // writer flush its tail and half-close the link (FIN); our readers then
    // exit once the peers' writers do the same.
    drop(writer_txs);
    for handle in transport_handles {
        handle.join().expect("transport thread panicked");
    }
    // All task threads and pooled bodies are gone, so all notify senders are
    // dropped and the collector terminates even after a panic.
    let windows = collector
        .map(|h| h.join().expect("collector thread panicked"))
        .unwrap_or_default();
    if !panicked.is_empty() {
        return Err(RunError::TaskPanicked(panicked));
    }
    let transport_errors = transport_errors
        .lock()
        .map(|g| g.clone())
        .unwrap_or_default();
    if !transport_errors.is_empty() {
        return Err(RunError::Transport(transport_errors));
    }
    Ok(RunReport {
        tasks: registry.snapshot_tasks(),
        windows,
        trace: registry.trace().events(),
        peak_rss: peak_rss_bytes(),
    })
}

/// Collector loop: count window-close notifications; when all `total` tasks
/// reported window `w`, snapshot the whole registry for it.
fn collect_windows(
    rx: Receiver<u64>,
    registry: Arc<MetricsRegistry>,
    total: usize,
) -> Vec<WindowSnapshot> {
    let mut counts: HashMap<u64, usize> = HashMap::new();
    let mut snaps: Vec<WindowSnapshot> = Vec::new();
    while let Ok(w) = rx.recv() {
        let c = counts.entry(w).or_insert(0);
        *c += 1;
        if *c == total {
            counts.remove(&w);
            snaps.push(WindowSnapshot {
                window: w,
                tasks: registry.snapshot_tasks(),
            });
        }
    }
    // Alignment means completion order is ascending in practice, but the
    // channel interleaving is not guaranteed; keep the series sorted.
    snaps.sort_by_key(|s| s.window);
    snaps
}

/// Alignment state for one forward upstream task.
struct UpstreamState<M> {
    /// Punctuations processed but not yet aligned; `> 0` means *blocked* —
    /// envelopes from this upstream are buffered, not processed.
    ahead: u32,
    /// The outstanding (processed but un-aligned) punctuation id. Because
    /// an upstream blocks after one unaligned punctuation, `ahead <= 1` and
    /// at most one id is outstanding; the supervisor's pending-envelope
    /// dump needs it, since a processed punctuation is no longer in `queue`.
    pending_punct: Option<u64>,
    /// Buffered envelopes while blocked, FIFO.
    queue: VecDeque<Envelope<M>>,
    /// Already enqueued in the aligner's ready queue.
    in_ready: bool,
    /// This upstream delivered EOS: it no longer gates alignment.
    closed: bool,
}

/// Punctuation alignment with per-upstream blocking.
///
/// A forward upstream that has already punctuated the window being aligned
/// is *blocked*: its subsequent envelopes are buffered until the punctuation
/// has arrived from every forward upstream. This keeps window contents exact
/// even when upstream tasks run at different speeds — without it, data from
/// fast upstreams would leak into the previous window.
///
/// Upstream state lives in a dense `Vec` indexed through a one-time global
/// id → slot map (with a last-sender cache, since consecutive envelopes
/// usually share a sender), and upstreams unblocked by a completed
/// alignment go onto a ready queue — replay is O(1) amortized per buffered
/// envelope instead of a scan over all upstreams per step.
struct Aligner<M> {
    states: Vec<UpstreamState<M>>,
    /// Global upstream task id per slot (pending-envelope dump).
    globals: Vec<usize>,
    /// Global upstream task id → slot in `states`.
    index_of: HashMap<usize, usize>,
    /// `(global, slot)` of the last sender seen.
    last: Option<(usize, usize)>,
    needed: usize,
    punct_counts: HashMap<u64, usize>,
    eos_seen: usize,
    /// Upstreams that delivered EOS; alignment needs only `needed -
    /// closed_count` punctuations, so windows keep closing when an
    /// upstream ends mid-window.
    closed_count: usize,
    /// Slots that became unblocked while holding buffered envelopes.
    ready: VecDeque<usize>,
    /// Window ids aligned during the current receive step, recorded only
    /// when `track_closes` is set (the supervisor snapshots at these
    /// boundaries); cleared by the supervisor after each step.
    just_closed: Vec<u64>,
    track_closes: bool,
}

impl<M: Clone> Aligner<M> {
    fn new(forward_upstreams: &[usize], track_closes: bool) -> Self {
        Aligner {
            states: forward_upstreams
                .iter()
                .map(|_| UpstreamState {
                    ahead: 0,
                    pending_punct: None,
                    queue: VecDeque::new(),
                    in_ready: false,
                    closed: false,
                })
                .collect(),
            globals: forward_upstreams.to_vec(),
            index_of: forward_upstreams
                .iter()
                .enumerate()
                .map(|(slot, &g)| (g, slot))
                .collect(),
            last: None,
            needed: forward_upstreams.len(),
            punct_counts: HashMap::new(),
            eos_seen: 0,
            closed_count: 0,
            ready: VecDeque::new(),
            just_closed: Vec::new(),
            track_closes,
        }
    }

    /// Upstreams still gating alignment (not yet at EOS).
    #[inline]
    fn alive(&self) -> usize {
        self.needed - self.closed_count
    }

    /// Slot of a forward upstream, `None` for feedback senders.
    #[inline]
    fn slot_of(&mut self, from: usize) -> Option<usize> {
        if let Some((global, slot)) = self.last {
            if global == from {
                return Some(slot);
            }
        }
        let slot = self.index_of.get(&from).copied()?;
        self.last = Some((from, slot));
        Some(slot)
    }

    /// Punctuations received from `from` but not yet retired by a completed
    /// alignment — the processed-but-unaligned one (`ahead`) plus any still
    /// buffered behind it. Added to the completed-alignment count, this
    /// gives the window a data envelope from `from` will be *delivered* in,
    /// before the envelope is handed to [`Aligner::handle`]. The fault
    /// clock keys on this: it depends only on the envelope's own upstream
    /// punctuation sequence, not on cross-upstream arrival interleaving.
    /// `0` for feedback senders (their data flows immediately).
    fn puncts_ahead_of(&mut self, from: usize) -> u64 {
        match self.slot_of(from) {
            Some(slot) => {
                let st = &self.states[slot];
                st.ahead as u64
                    + st.queue
                        .iter()
                        .filter(|e| matches!(e, Envelope::Punct(..)))
                        .count() as u64
            }
            None => 0,
        }
    }

    /// Feed one envelope; returns `true` once every forward upstream
    /// delivered EOS.
    fn handle(
        &mut self,
        env: Envelope<M>,
        bolt: &mut dyn Bolt<M>,
        out: &mut Outbox<M>,
        m: &mut TaskMeter,
    ) -> bool {
        let from = env.source_task();
        let Some(slot) = self.slot_of(from) else {
            // Feedback edge: data flows immediately, control is ignored.
            match env {
                Envelope::Data(msg, _) => {
                    m.stats.received += 1;
                    bolt.execute(msg, out);
                }
                Envelope::Batch(msgs, _) => {
                    m.stats.received += msgs.len() as u64;
                    for msg in msgs {
                        bolt.execute(msg, out);
                    }
                }
                _ => {}
            }
            return false;
        };
        if self.states[slot].ahead > 0 {
            self.states[slot].queue.push_back(env);
        } else {
            self.process(slot, env, bolt, out, m);
            // Supervised tasks drain in `Supervisor::after_step` instead:
            // the boundary snapshot and replay log must be captured while
            // the unblocked envelopes are still queued, or a crash right
            // after the boundary would lose them.
            if !self.track_closes {
                self.drain(bolt, out, m);
            }
        }
        self.eos_seen == self.needed
    }

    fn process(
        &mut self,
        slot: usize,
        env: Envelope<M>,
        bolt: &mut dyn Bolt<M>,
        out: &mut Outbox<M>,
        m: &mut TaskMeter,
    ) {
        match env {
            Envelope::Data(msg, _) => {
                m.stats.received += 1;
                bolt.execute(msg, out);
            }
            Envelope::Batch(msgs, _) => {
                m.stats.received += msgs.len() as u64;
                for msg in msgs {
                    bolt.execute(msg, out);
                }
            }
            Envelope::Punct(p, _) => {
                self.states[slot].ahead += 1;
                self.states[slot].pending_punct = Some(p);
                let c = self.punct_counts.entry(p).or_insert(0);
                *c += 1;
                // Alignment needs the punctuation from every *live*
                // upstream: an upstream that ended mid-window (EOS before
                // punctuating) has left the quorum for good.
                if *c >= self.alive() {
                    self.complete(p, bolt, out, m);
                }
            }
            Envelope::Eos(_) => {
                // Idempotent per upstream: a transport reader synthesizes
                // EOS when a peer process dies, which can duplicate an EOS
                // the peer already delivered (real EOS sent, `Close` not
                // yet). Counting the duplicate would satisfy the
                // termination quorum early and truncate surviving inputs.
                if !self.states[slot].closed {
                    self.states[slot].closed = true;
                    self.eos_seen += 1;
                    self.closed_count += 1;
                    // The quorum shrank: outstanding punctuations may now be
                    // satisfied by the survivors alone. Without this
                    // re-check, one upstream ending mid-window would stop
                    // every later window from closing — surviving upstreams'
                    // envelopes would buffer unboundedly and be dropped
                    // unprocessed at disconnect.
                    self.flush_completable(bolt, out, m);
                }
            }
        }
    }

    /// Close window `p`: run the bolt's window logic, forward the
    /// punctuation, and retire each upstream's outstanding punctuation
    /// (unblocking buffered envelopes onto the ready queue).
    fn complete(&mut self, p: u64, bolt: &mut dyn Bolt<M>, out: &mut Outbox<M>, m: &mut TaskMeter) {
        self.punct_counts.remove(&p);
        // Close-to-emit span: window work plus output flush.
        let t0 = m.enabled.then(Instant::now);
        m.stats.puncts += 1;
        bolt.on_punct(p, out);
        out.punctuate(p);
        if let Some(t0) = t0 {
            m.window_closed(p, t0.elapsed());
        }
        if self.track_closes {
            self.just_closed.push(p);
        }
        // Retire each upstream's oldest outstanding punctuation;
        // upstreams that held buffered envelopes become ready.
        for (i, st) in self.states.iter_mut().enumerate() {
            st.ahead = st.ahead.saturating_sub(1);
            if st.ahead == 0 {
                st.pending_punct = None;
                if !st.queue.is_empty() && !st.in_ready {
                    st.in_ready = true;
                    self.ready.push_back(i);
                }
            }
        }
    }

    /// Complete every outstanding punctuation the shrunken live quorum now
    /// satisfies, oldest window first (once every upstream has closed,
    /// `alive() == 0` and all outstanding punctuations drain in order).
    fn flush_completable(
        &mut self,
        bolt: &mut dyn Bolt<M>,
        out: &mut Outbox<M>,
        m: &mut TaskMeter,
    ) {
        loop {
            let alive = self.alive();
            let Some(p) = self
                .punct_counts
                .iter()
                .filter(|&(_, &c)| c >= alive)
                .map(|(&p, _)| p)
                .min()
            else {
                break;
            };
            self.complete(p, bolt, out, m);
        }
    }

    /// Snapshot the in-flight input state for the supervisor's replay log:
    /// per upstream, a synthesized punctuation for the outstanding id (it
    /// was consumed from the queue when processed), then the buffered
    /// envelopes, or a synthesized EOS for a closed upstream. Replaying
    /// these through a fresh aligner reconstructs blocking, quorum, and
    /// EOS accounting exactly.
    fn pending_envelopes(&self) -> Vec<Envelope<M>> {
        let mut pending = Vec::new();
        for (slot, st) in self.states.iter().enumerate() {
            let global = self.globals[slot];
            if st.closed {
                pending.push(Envelope::Eos(global));
                continue;
            }
            if let Some(p) = st.pending_punct {
                pending.push(Envelope::Punct(p, global));
            }
            for env in &st.queue {
                pending.push(env.clone());
            }
        }
        pending
    }

    /// Replay buffered envelopes from upstreams that are no longer blocked;
    /// an alignment completed during replay can enqueue further upstreams.
    fn drain(&mut self, bolt: &mut dyn Bolt<M>, out: &mut Outbox<M>, m: &mut TaskMeter) {
        while let Some(slot) = self.ready.pop_front() {
            self.states[slot].in_ready = false;
            while self.states[slot].ahead == 0 {
                let Some(env) = self.states[slot].queue.pop_front() else {
                    break;
                };
                self.process(slot, env, bolt, out, m);
            }
        }
    }
}

/// One receive step: time the envelope into busy and the handle histogram
/// (scaled to the tuples it carried), and run the window-boundary
/// bookkeeping when the step closed windows. Returns `true` once every
/// forward upstream delivered EOS. May unwind out of bolt user code — the
/// supervised path wraps it in `catch_unwind`.
fn process_timed<M: Clone>(
    env: Envelope<M>,
    bolt: &mut dyn Bolt<M>,
    align: &mut Aligner<M>,
    out: &mut Outbox<M>,
    meter: &mut TaskMeter,
    rx: &Receiver<Envelope<M>>,
    notify: &Option<Sender<u64>>,
) -> bool {
    let t0 = Instant::now();
    let before = meter.stats.received;
    let done = align.handle(env, bolt, out, meter);
    let dt = t0.elapsed();
    meter.stats.busy += dt;
    if meter.enabled {
        meter
            .handle_hist
            .record_scaled(dt.as_nanos() as u64, meter.stats.received - before);
        if !meter.closed.is_empty() {
            meter.flush_windows(out.emitted, out.batches, rx.len(), notify);
        }
    }
    done
}

/// Per-task supervision state: the fault-injection clock, the replay log
/// since the last window-aligned snapshot, the snapshot itself, the retry
/// budget, and fault-delayed envelopes.
struct Supervisor<M> {
    factory: BoltFactory<M>,
    policy: RecoveryPolicy,
    faults: TaskFaults,
    fences: Option<Arc<FenceState>>,
    info: TaskInfo,
    inst: Arc<TaskInstruments>,
    forward_upstreams: Vec<usize>,
    my_global: usize,
    /// Logical clock: completed alignments, and per-window data-tuple
    /// counts (the coordinate system of [`crate::FaultPlan`]). A data
    /// envelope ticks the window it will be *delivered* in — `window` plus
    /// its own upstream's unaligned punctuations — so the attribution is
    /// deterministic per upstream even when a slow edge's punctuation
    /// arrives after faster edges have already run ahead. Keys below
    /// `window` are pruned at each boundary.
    window: u64,
    tuples_at: HashMap<u64, u64>,
    /// Envelopes received since the last snapshot; replayed after restart.
    log: Vec<Envelope<M>>,
    /// Latest window-aligned [`Bolt::snapshot`], with the logical window
    /// and output punctuation sequence it was taken at.
    snapshot: Option<BoltState>,
    snap_window: u64,
    snap_punct_seq: u64,
    retries_left: u32,
    attempts: u32,
    /// Fault-delayed envelopes: `(due-at envelope count, envelope)`.
    delayed: VecDeque<(u64, Envelope<M>)>,
    envelopes_seen: u64,
    /// Fenced in degraded mode: the bolt is a [`DiscardBolt`], fault
    /// injection is off, and no further snapshots are taken.
    fenced: bool,
}

impl<M: Clone + Send + 'static> Supervisor<M> {
    /// Feed one received envelope through fault injection and the guarded
    /// processing path. Returns `true` once all forward upstreams are done.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        env: Envelope<M>,
        bolt: &mut Box<dyn Bolt<M>>,
        align: &mut Aligner<M>,
        out: &mut Outbox<M>,
        meter: &mut TaskMeter,
        rx: &Receiver<Envelope<M>>,
        notify: &Option<Sender<u64>>,
    ) -> bool {
        self.envelopes_seen += 1;
        // Release fault-delayed envelopes: the due ones, and all of them
        // ahead of a control token so window boundaries stay exact.
        if !self.delayed.is_empty() {
            let control = matches!(env, Envelope::Punct(..) | Envelope::Eos(_));
            let seen = self.envelopes_seen;
            let mut due = Vec::new();
            let mut held = VecDeque::new();
            while let Some((at, e)) = self.delayed.pop_front() {
                if control || at <= seen {
                    due.push(e);
                } else {
                    held.push_back((at, e));
                }
            }
            self.delayed = held;
            for e in due {
                if self.guarded(e, bolt, align, out, meter, rx, notify) {
                    return true;
                }
            }
        }
        // Fault injection fires on data envelopes only (never once fenced),
        // keyed by the window the envelope will be delivered in.
        let n = env.data_len();
        if n > 0 {
            let window = self.window + align.puncts_ahead_of(env.source_task());
            let tuple = self.tuples_at.entry(window).or_insert(0);
            let action = if self.fenced || self.faults.is_empty() {
                None
            } else {
                self.faults.on_data(window, *tuple, n)
            };
            *tuple += n;
            match action {
                None => {}
                Some(FaultAction::Drop) => {
                    self.inst.counter("faults_dropped").add(n);
                    return false;
                }
                Some(FaultAction::Delay(hold)) => {
                    self.inst.counter("faults_delayed").inc();
                    self.delayed
                        .push_back((self.envelopes_seen + hold.max(1), env));
                    return false;
                }
                Some(FaultAction::Stall(spins)) => {
                    self.inst.counter("faults_stalls").inc();
                    let mut acc = 0u64;
                    for i in 0..spins {
                        acc = std::hint::black_box(acc.wrapping_add(i));
                    }
                    std::hint::black_box(acc);
                }
                Some(FaultAction::Crash) => {
                    // Log first so replay re-processes this envelope (a
                    // one-shot trigger is already marked fired and will not
                    // re-kill the restarted task).
                    self.log.push(env);
                    let payload: Box<dyn std::any::Any + Send> = Box::new(FaultPanic {
                        component: self.info.component.clone(),
                        task: self.info.task_index,
                        window,
                    });
                    return self.recover(payload, bolt, align, out, meter, rx, notify);
                }
            }
        }
        self.guarded(env, bolt, align, out, meter, rx, notify)
    }

    /// Process one envelope under `catch_unwind`; recover on panic.
    #[allow(clippy::too_many_arguments)]
    fn guarded(
        &mut self,
        env: Envelope<M>,
        bolt: &mut Box<dyn Bolt<M>>,
        align: &mut Aligner<M>,
        out: &mut Outbox<M>,
        meter: &mut TaskMeter,
        rx: &Receiver<Envelope<M>>,
        notify: &Option<Sender<u64>>,
    ) -> bool {
        self.log.push(env.clone());
        // Only silence the default panic report when this panic will be
        // handled; a terminal panic prints exactly as unsupervised code.
        let handled = self.retries_left > 0 || self.policy.degraded;
        let go = AssertUnwindSafe(|| {
            let done = process_timed(env, bolt.as_mut(), align, out, meter, rx, notify);
            // Boundary bookkeeping runs inside the guard: the post-boundary
            // drain executes bolt user code, and a panic there must be
            // recoverable too.
            self.after_step(bolt, align, out, meter);
            done
        });
        let result = if handled {
            fault::quiet_panics(|| catch_unwind(go))
        } else {
            catch_unwind(go)
        };
        match result {
            Ok(done) => done,
            Err(payload) => self.recover(payload, bolt, align, out, meter, rx, notify),
        }
    }

    /// Window-boundary bookkeeping: at every completed alignment, take a
    /// fresh snapshot and reset the replay log to the aligner's pending
    /// input — everything earlier is covered by the snapshot. Only then
    /// drain the envelopes the boundary unblocked (they are already in the
    /// new log, so a later crash replays them); draining may close further
    /// windows, hence the loop.
    fn after_step(
        &mut self,
        bolt: &mut Box<dyn Bolt<M>>,
        align: &mut Aligner<M>,
        out: &mut Outbox<M>,
        meter: &mut TaskMeter,
    ) {
        while !align.just_closed.is_empty() {
            self.window += align.just_closed.len() as u64;
            let floor = self.window;
            self.tuples_at.retain(|&w, _| w >= floor);
            align.just_closed.clear();
            if self.fenced {
                self.log.clear();
            } else {
                self.snapshot = bolt.snapshot();
                self.snap_window = self.window;
                self.snap_punct_seq = out.punct_seq;
                self.log = align.pending_envelopes();
            }
            align.drain(bolt.as_mut(), out, meter);
        }
    }

    /// Bounded retry-with-backoff: rebuild the bolt from its factory,
    /// restore the last window-aligned snapshot, and replay the log. On
    /// exhaustion, either degrade (fence and keep the topology alive) or
    /// let the panic propagate as an unsupervised one would.
    #[allow(clippy::too_many_arguments)]
    fn recover(
        &mut self,
        mut payload: Box<dyn std::any::Any + Send>,
        bolt: &mut Box<dyn Bolt<M>>,
        align: &mut Aligner<M>,
        out: &mut Outbox<M>,
        meter: &mut TaskMeter,
        rx: &Receiver<Envelope<M>>,
        notify: &Option<Sender<u64>>,
    ) -> bool {
        loop {
            self.inst.counter("faults_crashes").inc();
            if self.retries_left == 0 {
                if self.policy.degraded {
                    return self.degrade(bolt, align, out, meter, rx, notify);
                }
                resume_unwind(payload);
            }
            self.retries_left -= 1;
            self.attempts += 1;
            self.inst.counter("recoveries_attempted").inc();
            std::thread::sleep(self.policy.backoff_for(self.attempts));
            *bolt = (self.factory)(self.info.task_index);
            bolt.attach_instruments(&self.inst);
            bolt.prepare(&self.info);
            if let Some(snap) = &self.snapshot {
                if let Err(e) = bolt.restore(snap) {
                    payload = Box::new(format!("snapshot restore failed: {e}"));
                    continue;
                }
            }
            match self.replay(bolt, align, out, meter, rx, notify) {
                Ok(done) => {
                    self.inst.counter("recoveries_succeeded").inc();
                    return done;
                }
                Err(p) => payload = p, // crashed again during replay
            }
        }
    }

    /// Rebuild aligner and bolt state by replaying the log from the
    /// snapshot point. Output is suppressed over the already-delivered
    /// prefix (see [`Outbox::begin_replay`]): re-closed windows re-emit
    /// neither data nor punctuation, and only emissions past the last
    /// delivered punctuation flow again — downstream windows stay exact,
    /// at the price of at-least-once delivery *within* the window the
    /// crash interrupted.
    fn replay(
        &mut self,
        bolt: &mut Box<dyn Bolt<M>>,
        align: &mut Aligner<M>,
        out: &mut Outbox<M>,
        meter: &mut TaskMeter,
        rx: &Receiver<Envelope<M>>,
        notify: &Option<Sender<u64>>,
    ) -> Result<bool, Box<dyn std::any::Any + Send>> {
        *align = Aligner::new(&self.forward_upstreams, true);
        out.begin_replay(self.snap_punct_seq);
        self.window = self.snap_window;
        self.tuples_at.clear();
        let old_log = std::mem::take(&mut self.log);
        self.inst
            .counter("recoveries_replayed")
            .add(old_log.len() as u64);
        let handled = self.retries_left > 0 || self.policy.degraded;
        let progress = std::cell::Cell::new(0usize);
        let go = AssertUnwindSafe(|| {
            let mut done = false;
            for (i, env) in old_log.iter().enumerate() {
                // Invariant on panic: `self.log` plus `old_log[progress..]`
                // is the exact post-snapshot history, each envelope once.
                progress.set(i);
                // Repeating crash faults re-fire during replay — that is
                // how a persistent failure exhausts its retries. Re-fires
                // of drop/delay/stall are ignored: the envelope's effect
                // is already part of the history being rebuilt.
                let n = env.data_len();
                if n > 0 {
                    let window = self.window + align.puncts_ahead_of(env.source_task());
                    let tuple = self.tuples_at.entry(window).or_insert(0);
                    let action = if self.fenced || self.faults.is_empty() {
                        None
                    } else {
                        self.faults.on_data(window, *tuple, n)
                    };
                    *tuple += n;
                    if let Some(FaultAction::Crash) = action {
                        std::panic::panic_any(FaultPanic {
                            component: self.info.component.clone(),
                            task: self.info.task_index,
                            window,
                        });
                    }
                }
                self.log.push(env.clone());
                progress.set(i + 1);
                if process_timed(env.clone(), bolt.as_mut(), align, out, meter, rx, notify) {
                    done = true;
                }
                self.after_step(bolt, align, out, meter);
            }
            done
        });
        let result = if handled {
            fault::quiet_panics(|| catch_unwind(go))
        } else {
            catch_unwind(go)
        };
        match result {
            Ok(done) => Ok(done),
            Err(p) => {
                // Keep the unprocessed tail for the next attempt: the
                // processed prefix is already re-covered by the (possibly
                // advanced) snapshot + rebuilt log.
                for env in &old_log[progress.get()..] {
                    self.log.push(env.clone());
                }
                Err(p)
            }
        }
    }

    /// Retry budget exhausted with degraded mode on: fence this task, swap
    /// in a [`DiscardBolt`], and rebuild alignment by replay, so
    /// punctuation and EOS keep flowing and the topology terminates
    /// cleanly. Skipped work is counted, not silently lost.
    fn degrade(
        &mut self,
        bolt: &mut Box<dyn Bolt<M>>,
        align: &mut Aligner<M>,
        out: &mut Outbox<M>,
        meter: &mut TaskMeter,
        rx: &Receiver<Envelope<M>>,
        notify: &Option<Sender<u64>>,
    ) -> bool {
        self.fenced = true;
        if let Some(f) = &self.fences {
            f.fence(self.my_global);
        }
        self.inst.counter("faults_fenced").inc();
        *bolt = Box::new(DiscardBolt {
            skipped: self.inst.counter("faults_skipped"),
        });
        self.snapshot = None;
        // An Err is unreachable here (the discard bolt runs no user code and
        // fault injection is off once fenced); keep the task alive regardless.
        self.replay(bolt, align, out, meter, rx, notify)
            .unwrap_or_default()
    }
}

/// The supervised bolt receive loop: optional receive timeouts with
/// exponential backoff, fault injection, guarded processing, and restart
/// from snapshots on panic.
#[allow(clippy::too_many_arguments)]
fn run_supervised_bolt<M: Clone + Send + 'static>(
    bolt: &mut Box<dyn Bolt<M>>,
    sup: &mut Supervisor<M>,
    align: &mut Aligner<M>,
    rx: &Receiver<Envelope<M>>,
    fb_rx: &Receiver<Envelope<M>>,
    outbox: &mut Outbox<M>,
    has_feedback_upstream: bool,
    meter: &mut TaskMeter,
    notify: &Option<Sender<u64>>,
    shed: &mut Option<Shedder<M>>,
) {
    let mut fwd_open = true;
    let mut fb_open = has_feedback_upstream;
    let mut sel = Select::new();
    let fwd_idx = sel.recv(rx);
    let fb_idx = sel.recv(fb_rx);
    let base_to = sup.policy.recv_timeout;
    let mut cur_to = base_to;
    while fwd_open {
        if !fb_open {
            let env = match base_to {
                None => match rx.recv() {
                    Ok(e) => e,
                    Err(_) => {
                        fwd_open = false;
                        continue;
                    }
                },
                Some(base) => match rx.recv_timeout(cur_to.unwrap_or(base)) {
                    Ok(e) => {
                        cur_to = Some(base);
                        e
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        sup.inst.counter("faults_recv_timeouts").inc();
                        cur_to = Some((cur_to.unwrap_or(base) * 2).min(base * 64));
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        fwd_open = false;
                        continue;
                    }
                },
            };
            if shed.as_mut().is_some_and(|s| s.consider(&env, rx.len())) {
                continue; // dropped before the fault clock and replay log
            }
            if sup.step(env, bolt, align, outbox, meter, rx, notify) {
                break; // all forward upstreams at EOS
            }
            continue;
        }
        let op = match base_to {
            None => sel.select(),
            Some(base) => match sel.select_timeout(cur_to.unwrap_or(base)) {
                Ok(op) => {
                    cur_to = Some(base);
                    op
                }
                Err(_) => {
                    sup.inst.counter("faults_recv_timeouts").inc();
                    cur_to = Some((cur_to.unwrap_or(base) * 2).min(base * 64));
                    continue;
                }
            },
        };
        let idx = op.index();
        if idx == fwd_idx {
            match op.recv(rx) {
                Ok(env) => {
                    if shed.as_mut().is_some_and(|s| s.consider(&env, rx.len())) {
                        continue;
                    }
                    if sup.step(env, bolt, align, outbox, meter, rx, notify) {
                        break; // all forward upstreams at EOS
                    }
                }
                Err(_) => fwd_open = false,
            }
        } else if idx == fb_idx {
            match op.recv(fb_rx) {
                Ok(env) => {
                    let _ = sup.step(env, bolt, align, outbox, meter, rx, notify);
                }
                Err(_) => fb_open = false,
            }
        }
    }
}

fn run_task<M: Clone + Send + 'static>(w: TaskWiring<M>) {
    let TaskWiring {
        info,
        rx,
        fb_rx,
        mut outbox,
        forward_upstreams,
        has_feedback_upstream,
        kind,
        inst,
        notify,
        factory,
        faults,
        policy,
        fences,
        mut shed,
    } = w;
    let mut meter = TaskMeter::new(&info, inst);

    match kind {
        TaskKind::Spout(mut spout) => loop {
            let t0 = Instant::now();
            let emission = spout.next();
            meter.stats.busy += t0.elapsed();
            match emission {
                SpoutEmit::Message(msg) => {
                    outbox.emit(msg);
                }
                SpoutEmit::Punctuate(p) => {
                    let t0 = meter.enabled.then(Instant::now);
                    meter.stats.puncts += 1;
                    outbox.punctuate(p);
                    if let Some(t0) = t0 {
                        meter.window_closed(p, t0.elapsed());
                        meter.flush_windows(outbox.emitted, outbox.batches, 0, &notify);
                    }
                }
                SpoutEmit::Done => {
                    outbox.eos();
                    break;
                }
            }
        },
        TaskKind::Bolt(mut bolt) => {
            bolt.attach_instruments(&meter.inst);
            bolt.prepare(&info);
            // Supervision engages only when the policy arms it or a fault
            // targets this task; otherwise the pre-supervision hot path
            // runs unchanged (no log clones, no catch_unwind, no close
            // tracking).
            let supervised = (policy.armed() || !faults.is_empty()) && factory.is_some();
            if supervised {
                let mut align = Aligner::new(&forward_upstreams, true);
                let retries = policy.retries;
                let mut sup = Supervisor {
                    factory: factory.expect("supervised bolt has a factory"),
                    policy,
                    faults,
                    fences,
                    info: info.clone(),
                    inst: Arc::clone(&meter.inst),
                    forward_upstreams: forward_upstreams.clone(),
                    my_global: outbox.my_global,
                    window: 0,
                    tuples_at: HashMap::new(),
                    log: Vec::new(),
                    snapshot: None,
                    snap_window: 0,
                    snap_punct_seq: 0,
                    retries_left: retries,
                    attempts: 0,
                    delayed: VecDeque::new(),
                    envelopes_seen: 0,
                    fenced: false,
                };
                run_supervised_bolt(
                    &mut bolt,
                    &mut sup,
                    &mut align,
                    &rx,
                    &fb_rx,
                    &mut outbox,
                    has_feedback_upstream,
                    &mut meter,
                    &notify,
                    &mut shed,
                );
                bolt.finish(&mut outbox);
                outbox.eos();
                if has_feedback_upstream {
                    // Post-EOS feedback drain runs unsupervised: injected
                    // faults only target the windowed phase, and replaying
                    // across our own EOS would re-emit after the EOS token.
                    while let Ok(envelope) = fb_rx.recv() {
                        let _ = process_timed(
                            envelope,
                            bolt.as_mut(),
                            &mut align,
                            &mut outbox,
                            &mut meter,
                            &rx,
                            &notify,
                        );
                        align.just_closed.clear();
                    }
                }
            } else {
                let mut align = Aligner::new(&forward_upstreams, false);
                let mut fwd_open = true;
                let mut fb_open = has_feedback_upstream;
                macro_rules! step {
                    ($envelope:expr) => {
                        process_timed(
                            $envelope,
                            bolt.as_mut(),
                            &mut align,
                            &mut outbox,
                            &mut meter,
                            &rx,
                            &notify,
                        )
                    };
                }
                // The selector over the forward (bounded) and feedback
                // (unbounded) channels is built ONCE, outside the receive
                // loop — rebuilding it per message was a measurable
                // per-tuple cost. It is only consulted while both channels
                // are live; with a single live channel the loop below falls
                // back to a plain `recv`.
                let mut sel = Select::new();
                let fwd_idx = sel.recv(&rx);
                let fb_idx = sel.recv(&fb_rx);
                while fwd_open {
                    if !fb_open {
                        // Hot path (no feedback upstream, or feedback
                        // senders already gone): single-channel blocking
                        // receive.
                        match rx.recv() {
                            Ok(envelope) => {
                                if shed
                                    .as_mut()
                                    .is_some_and(|s| s.consider(&envelope, rx.len()))
                                {
                                    continue;
                                }
                                if step!(envelope) {
                                    break; // all forward upstreams at EOS
                                }
                            }
                            // All forward senders gone (e.g. upstream
                            // panicked).
                            Err(_) => fwd_open = false,
                        }
                        continue;
                    }
                    let op = sel.select();
                    let idx = op.index();
                    if idx == fwd_idx {
                        match op.recv(&rx) {
                            Ok(envelope) => {
                                if shed
                                    .as_mut()
                                    .is_some_and(|s| s.consider(&envelope, rx.len()))
                                {
                                    continue;
                                }
                                if step!(envelope) {
                                    break; // all forward upstreams at EOS
                                }
                            }
                            Err(_) => fwd_open = false,
                        }
                    } else if idx == fb_idx {
                        match op.recv(&fb_rx) {
                            Ok(envelope) => {
                                let _ = step!(envelope);
                            }
                            Err(_) => fb_open = false,
                        }
                    }
                }
                bolt.finish(&mut outbox);
                outbox.eos();
                if has_feedback_upstream {
                    // Control loops may still be sending while their own
                    // shutdown propagates; drain and process those messages
                    // so adaptive state and counters stay exact. Feedback
                    // senders terminate on forward EOS and drop the
                    // channel, ending this loop. (Feedback edges must
                    // therefore not form cycles among themselves.)
                    while let Ok(envelope) = fb_rx.recv() {
                        let _ = step!(envelope);
                    }
                }
            }
        }
    }

    if let Some(sh) = &shed {
        sh.publish(&meter.inst);
    }
    publish_final_metrics(&mut meter, &outbox);
    // `notify` (if any) drops here; the collector ends once every task's
    // sender is gone.
}

/// End-of-task metric publication shared by the legacy thread path and the
/// pooled task body: fold outbox totals and fault counters into the shared
/// instruments and publish all task-local state.
fn publish_final_metrics<M>(meter: &mut TaskMeter, outbox: &Outbox<M>) {
    meter.stats.emitted = outbox.emitted;
    meter.stats.batches = outbox.batches;
    if outbox.timeout_hits > 0 {
        meter
            .inst
            .counter("faults_send_timeouts")
            .add(outbox.timeout_hits);
    }
    if outbox.rerouted > 0 {
        meter.inst.counter("faults_rerouted").add(outbox.rerouted);
    }
    if outbox.fenced_drops > 0 {
        meter
            .inst
            .counter("faults_fenced_drops")
            .add(outbox.fenced_drops);
    }
    if meter.enabled {
        meter.inst.trace(TraceKind::Eos, u64::MAX, Duration::ZERO);
    }
    meter.publish(outbox.emitted, outbox.batches);
}

/// A bolt task under the pooled scheduler (DESIGN.md §4e): the same
/// machinery as the bolt arm of [`run_task`] — aligner, meter, optional
/// supervisor — reshaped into a resumable [`TaskStep`] state machine driven
/// by non-blocking receives.
///
/// Phase progression mirrors the legacy thread exactly:
/// `Receive` (windowed phase: feedback and forward envelopes, supervised if
/// armed) → `Drain` (after the forward EOS quorum or disconnect: flush the
/// bolt, send EOS, absorb residual feedback traffic unsupervised) → `Done`
/// (publish final metrics, retire). Dropping the body — on retirement or
/// after a terminal panic — drops its receivers and outbox senders, which is
/// what downstream and upstream observe as EOS, exactly like a legacy
/// thread's stack unwinding.
struct CoopBolt<M> {
    info: TaskInfo,
    rx: Receiver<Envelope<M>>,
    fb_rx: Receiver<Envelope<M>>,
    outbox: Outbox<M>,
    align: Aligner<M>,
    meter: TaskMeter,
    notify: Option<Sender<u64>>,
    bolt: Box<dyn Bolt<M>>,
    /// Present when the recovery policy or a fault plan arms supervision.
    sup: Option<Supervisor<M>>,
    /// Feedback senders still connected (starts false without feedback
    /// upstreams, so the windowed phase never polls the channel).
    fb_open: bool,
    /// `attach_instruments` + `prepare` ran (deferred to the first step so
    /// their panics hit the worker's `catch_unwind` like any user code).
    started: bool,
    phase: CoopPhase,
    shed: Option<Shedder<M>>,
}

enum CoopPhase {
    Receive,
    Drain,
    Done,
}

impl<M: Clone + Send + 'static> CoopBolt<M> {
    fn new(w: TaskWiring<M>) -> CoopBolt<M> {
        let TaskWiring {
            info,
            rx,
            fb_rx,
            outbox,
            forward_upstreams,
            has_feedback_upstream,
            kind,
            inst,
            notify,
            factory,
            faults,
            policy,
            fences,
            shed,
        } = w;
        let TaskKind::Bolt(bolt) = kind else {
            unreachable!("spouts are never pool-scheduled");
        };
        let meter = TaskMeter::new(&info, inst);
        let supervised = (policy.armed() || !faults.is_empty()) && factory.is_some();
        let align = Aligner::new(&forward_upstreams, supervised);
        let sup = if supervised {
            let retries = policy.retries;
            Some(Supervisor {
                factory: factory.expect("supervised bolt has a factory"),
                policy,
                faults,
                fences,
                info: info.clone(),
                inst: Arc::clone(&meter.inst),
                forward_upstreams,
                my_global: outbox.my_global,
                window: 0,
                tuples_at: HashMap::new(),
                log: Vec::new(),
                snapshot: None,
                snap_window: 0,
                snap_punct_seq: 0,
                retries_left: retries,
                attempts: 0,
                delayed: VecDeque::new(),
                envelopes_seen: 0,
                fenced: false,
            })
        } else {
            None
        };
        CoopBolt {
            info,
            rx,
            fb_rx,
            outbox,
            align,
            meter,
            notify,
            bolt,
            sup,
            fb_open: has_feedback_upstream,
            started: false,
            phase: CoopPhase::Receive,
            shed,
        }
    }

    /// Feed one envelope through the supervised or plain path; true when
    /// every forward upstream has reached EOS.
    fn handle(&mut self, env: Envelope<M>) -> bool {
        match &mut self.sup {
            Some(sup) => sup.step(
                env,
                &mut self.bolt,
                &mut self.align,
                &mut self.outbox,
                &mut self.meter,
                &self.rx,
                &self.notify,
            ),
            None => process_timed(
                env,
                self.bolt.as_mut(),
                &mut self.align,
                &mut self.outbox,
                &mut self.meter,
                &self.rx,
                &self.notify,
            ),
        }
    }

    /// The forward side closed (EOS quorum or disconnect): flush user state,
    /// send EOS, and switch to draining residual feedback traffic.
    fn enter_drain(&mut self) {
        self.bolt.finish(&mut self.outbox);
        self.outbox.eos();
        self.phase = CoopPhase::Drain;
    }
}

impl<M: Clone + Send + 'static> TaskStep for CoopBolt<M> {
    fn step(&mut self) -> StepOutcome {
        if !self.started {
            self.started = true;
            self.bolt.attach_instruments(&self.meter.inst);
            self.bolt.prepare(&self.info);
        }
        let mut budget = sched::TICK_BUDGET;
        loop {
            match self.phase {
                CoopPhase::Receive => {
                    if budget == 0 {
                        return StepOutcome::More;
                    }
                    // Poll feedback first: control traffic (δ-updates,
                    // repartition signals) is sparse and latency-sensitive.
                    if self.fb_open {
                        match self.fb_rx.try_recv() {
                            Ok(env) => {
                                budget -= 1;
                                // Result ignored: feedback never carries the
                                // EOS quorum (mirrors the legacy select arm).
                                let _ = self.handle(env);
                                continue;
                            }
                            Err(TryRecvError::Empty) => {}
                            Err(TryRecvError::Disconnected) => self.fb_open = false,
                        }
                    }
                    match self.rx.try_recv() {
                        Ok(env) => {
                            budget -= 1;
                            if self
                                .shed
                                .as_mut()
                                .is_some_and(|s| s.consider(&env, self.rx.len()))
                            {
                                continue;
                            }
                            if self.handle(env) {
                                self.enter_drain();
                            }
                        }
                        Err(TryRecvError::Empty) => return StepOutcome::Idle,
                        // All forward senders gone (e.g. upstream panicked).
                        Err(TryRecvError::Disconnected) => self.enter_drain(),
                    }
                }
                CoopPhase::Drain => {
                    if budget == 0 {
                        return StepOutcome::More;
                    }
                    match self.fb_rx.try_recv() {
                        Ok(env) => {
                            budget -= 1;
                            // Post-EOS feedback drains unsupervised (see
                            // `run_task`): faults target the windowed phase
                            // only, and replaying across our own EOS would
                            // re-emit after the EOS token.
                            let _ = process_timed(
                                env,
                                self.bolt.as_mut(),
                                &mut self.align,
                                &mut self.outbox,
                                &mut self.meter,
                                &self.rx,
                                &self.notify,
                            );
                            self.align.just_closed.clear();
                        }
                        Err(TryRecvError::Empty) => return StepOutcome::Idle,
                        Err(TryRecvError::Disconnected) => {
                            if let Some(sh) = &self.shed {
                                sh.publish(&self.meter.inst);
                            }
                            publish_final_metrics(&mut self.meter, &self.outbox);
                            self.phase = CoopPhase::Done;
                        }
                    }
                }
                CoopPhase::Done => return StepOutcome::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsConfig, MetricsRegistry};
    use crate::{fn_bolt, TaskInfo};

    fn test_outbox() -> Outbox<u64> {
        Outbox {
            my_global: 0,
            edges: Vec::new(),
            batch_size: 1,
            emitted: 0,
            batches: 0,
            punct_seq: 0,
            replay_until: 0,
            send_timeout: None,
            timeout_hits: 0,
            fences: None,
            rerouted: 0,
            fenced_drops: 0,
            sched: None,
        }
    }

    fn test_meter(reg: &mut MetricsRegistry) -> TaskMeter {
        let info = TaskInfo {
            component: "aligner".to_string(),
            task_index: 0,
            parallelism: 1,
        };
        TaskMeter::new(&info, reg.register("aligner", 0))
    }

    /// A transport reader synthesizes EOS for a dead peer's tasks, which can
    /// duplicate an EOS the peer already delivered. The duplicate must not
    /// count toward the termination quorum or shrink the punctuation quorum
    /// a second time.
    #[test]
    fn duplicate_eos_is_idempotent() {
        let mut reg = MetricsRegistry::new(MetricsConfig::default());
        let mut out = test_outbox();
        let mut m = test_meter(&mut reg);
        let closed = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let c = closed.clone();
        let mut bolt = fn_bolt::<u64, _>(move |_msg, _out| {});
        struct ClosedProbe {
            inner: Box<dyn Bolt<u64>>,
            closed: std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
        }
        impl Bolt<u64> for ClosedProbe {
            fn execute(&mut self, msg: u64, out: &mut Outbox<u64>) {
                self.inner.execute(msg, out);
            }
            fn on_punct(&mut self, p: u64, _out: &mut Outbox<u64>) {
                self.closed.lock().unwrap().push(p);
            }
        }
        let mut bolt: Box<dyn Bolt<u64>> = Box::new(ClosedProbe {
            inner: std::mem::replace(&mut bolt, fn_bolt(|_m, _o| {})),
            closed: c,
        });

        let mut al = Aligner::<u64>::new(&[10, 11], false);
        // Upstream 10 punctuates window 1; quorum is 2, so it stays open.
        assert!(!al.handle(Envelope::Punct(1, 10), bolt.as_mut(), &mut out, &mut m));
        assert!(closed.lock().unwrap().is_empty());
        // Upstream 11 dies (EOS): quorum shrinks to 1 and window 1 closes.
        assert!(!al.handle(Envelope::Eos(11), bolt.as_mut(), &mut out, &mut m));
        assert_eq!(*closed.lock().unwrap(), vec![1]);
        // A synthesized duplicate EOS for 11 must not end the task: the
        // termination quorum still waits on upstream 10.
        assert!(!al.handle(Envelope::Eos(11), bolt.as_mut(), &mut out, &mut m));
        assert!(!al.handle(Envelope::Eos(11), bolt.as_mut(), &mut out, &mut m));
        // Upstream 10's real EOS finishes the task.
        assert!(al.handle(Envelope::Eos(10), bolt.as_mut(), &mut out, &mut m));
        assert_eq!(*closed.lock().unwrap(), vec![1]);
    }

    /// Duplicate EOS must also leave in-flight data from survivors intact:
    /// windows punctuated after the duplicate still close exactly once.
    #[test]
    fn windows_close_once_after_duplicate_eos() {
        let mut reg = MetricsRegistry::new(MetricsConfig::default());
        let mut out = test_outbox();
        let mut m = test_meter(&mut reg);
        let mut bolt = fn_bolt::<u64, _>(|_msg, _out| {});
        let mut al = Aligner::<u64>::new(&[7, 8, 9], false);
        assert!(!al.handle(Envelope::Eos(8), bolt.as_mut(), &mut out, &mut m));
        assert!(!al.handle(Envelope::Eos(8), bolt.as_mut(), &mut out, &mut m));
        assert_eq!(al.alive(), 2);
        // Both survivors must still punctuate to close a window.
        assert!(!al.handle(Envelope::Punct(3, 7), bolt.as_mut(), &mut out, &mut m));
        assert_eq!(m.stats.puncts, 0);
        assert!(!al.handle(Envelope::Punct(3, 9), bolt.as_mut(), &mut out, &mut m));
        assert_eq!(m.stats.puncts, 1);
        assert!(!al.handle(Envelope::Eos(7), bolt.as_mut(), &mut out, &mut m));
        assert!(al.handle(Envelope::Eos(9), bolt.as_mut(), &mut out, &mut m));
    }
}
