//! The threaded executor: one OS thread per task, crossbeam channels for
//! tuple transport, punctuation alignment, and end-of-stream termination.
//!
//! Semantics:
//! * Delivery is reliable and in order per (sender task, receiver task) —
//!   in-process channels give us the exactly-once processing Storm is
//!   configured to guarantee in the paper.
//! * A **punctuation** emitted by the spouts (window boundary) is aligned:
//!   a bolt task sees `on_punct(p)` only after receiving punctuation `p`
//!   from *every* forward upstream task, then forwards it downstream —
//!   windows therefore tumble consistently across the whole topology.
//! * **End of stream**: when every spout finishes, EOS tokens flow along
//!   forward edges; a bolt task finishes after EOS from all forward
//!   upstream tasks. Feedback edges carry data but never gate termination.
//! * A panicking task is reported in [`RunError::TaskPanicked`]; remaining
//!   tasks drain and shut down (disconnected channels count as EOS).
//!
//! Transport batching: tuples crossing a forward edge are accumulated in
//! per-target output buffers and shipped as one [`Envelope::Batch`] once
//! `batch_size` messages are pending for that target, amortizing the
//! per-message channel cost (lock, wakeup, envelope) over the batch.
//! Buffers are flushed *before* every punctuation and EOS token, so window
//! contents are exactly those of an unbatched run and latency is bounded by
//! window boundaries; [`Outbox::flush`] forces delivery mid-window.
//! Feedback edges bypass batching entirely — control loops (δ-updates,
//! repartition signals) stay low-latency.

use crate::metrics::{
    self, LocalHistogram, MetricsConfig, MetricsRegistry, TaskInstruments, TaskSnapshot,
    TraceEvent, TraceKind, WindowSnapshot,
};
use crate::topology::{Component, ComponentKind, Grouping, Subscription, Topology};
use crate::{Bolt, Spout, SpoutEmit, TaskInfo};
use crossbeam::channel::{bounded, unbounded, Receiver, Select, Sender};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Internal envelope moving between tasks.
enum Envelope<M> {
    /// One data message from global task `from` (the unbatched path:
    /// `batch_size == 1`, feedback edges, and single-message flushes).
    Data(M, usize),
    /// A batch of data messages from global task `from`; never empty.
    Batch(Vec<M>, usize),
    /// Punctuation `id` from global task `from`.
    Punct(u64, usize),
    /// End of stream from global task `from`.
    Eos(usize),
}

impl<M> Envelope<M> {
    fn source_task(&self) -> usize {
        match self {
            Envelope::Data(_, f)
            | Envelope::Batch(_, f)
            | Envelope::Punct(_, f)
            | Envelope::Eos(f) => *f,
        }
    }
}

/// Per-task throughput counters in the legacy flat shape, reconstructed
/// from the metrics registry by [`RunReport::legacy_tasks`]. New code should
/// read [`TaskSnapshot`]s from [`RunReport::tasks`] instead.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskMetrics {
    /// Component name.
    pub component: String,
    /// Task index within the component.
    pub task: usize,
    /// Data messages received.
    pub received: u64,
    /// Data messages emitted (counting each delivered copy).
    pub emitted: u64,
    /// Data envelopes (batches) sent; an unbatched send counts as a batch
    /// of one, so `emitted / batches` is the average batch size.
    pub batches: u64,
    /// Punctuations processed.
    pub puncts: u64,
    /// Time spent inside user code (`execute` / `on_punct` / spout `next`),
    /// excluding channel waits — the task's *busy* time.
    pub busy: std::time::Duration,
}

impl TaskMetrics {
    /// Average messages per sent data envelope (0 when nothing was sent).
    pub fn avg_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.emitted as f64 / self.batches as f64
        }
    }
}

/// The outcome of a completed run: final per-task instrument snapshots, the
/// per-punctuation time series collected while the run was live (empty
/// unless [`TopologyBuilder::metrics`](crate::TopologyBuilder::metrics) was
/// enabled), and the retained window-lifecycle trace.
#[derive(Debug)]
pub struct RunReport {
    /// Final snapshot of every task's instruments, in global task order.
    pub tasks: Vec<TaskSnapshot>,
    /// One whole-registry snapshot per fully-aligned punctuation, ascending
    /// by window id. Counters are cumulative, so the series is monotone.
    pub windows: Vec<WindowSnapshot>,
    /// Retained window-lifecycle trace events, oldest first.
    pub trace: Vec<TraceEvent>,
}

impl RunReport {
    /// Sum of one core counter over one component's tasks.
    fn sum(&self, component: &str, counter: &str) -> u64 {
        self.tasks
            .iter()
            .filter(|t| t.component == component)
            .map(|t| t.counter(counter))
            .sum()
    }

    /// Sum of received counts for one component.
    pub fn received(&self, component: &str) -> u64 {
        self.sum(component, "received")
    }

    /// Sum of emitted counts for one component.
    pub fn emitted(&self, component: &str) -> u64 {
        self.sum(component, "emitted")
    }

    /// Sum of sent data-envelope counts for one component.
    pub fn batches(&self, component: &str) -> u64 {
        self.sum(component, "batches")
    }

    /// Average batch size over one component's emissions (0 when idle).
    pub fn avg_batch_size(&self, component: &str) -> f64 {
        let b = self.batches(component);
        if b == 0 {
            0.0
        } else {
            self.emitted(component) as f64 / b as f64
        }
    }

    /// Per-task received counts for one component, ordered by task index.
    pub fn received_per_task(&self, component: &str) -> Vec<u64> {
        let mut v: Vec<(usize, u64)> = self
            .tasks
            .iter()
            .filter(|t| t.component == component)
            .map(|t| (t.task, t.counter("received")))
            .collect();
        v.sort();
        v.into_iter().map(|(_, r)| r).collect()
    }

    /// The final per-task counters in the legacy flat [`TaskMetrics`] shape.
    pub fn legacy_tasks(&self) -> Vec<TaskMetrics> {
        self.tasks
            .iter()
            .map(|t| TaskMetrics {
                component: t.component.clone(),
                task: t.task,
                received: t.counter("received"),
                emitted: t.counter("emitted"),
                batches: t.counter("batches"),
                puncts: t.counter("puncts"),
                busy: Duration::from_nanos(t.counter("busy_ns")),
            })
            .collect()
    }

    /// Write the report as JSON lines: one record per `(window, task)`, one
    /// final record per task, then one record per retained trace event.
    pub fn write_jsonl<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        metrics::write_jsonl(out, &self.windows, &self.tasks, &self.trace)
    }

    /// Render the per-component human summary table.
    pub fn summary_table(&self) -> String {
        metrics::summary_table(&self.tasks)
    }
}

/// Errors surfaced by [`run`].
#[derive(Debug)]
pub enum RunError {
    /// One or more tasks panicked; the payload lists `component[task]`.
    TaskPanicked(Vec<String>),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::TaskPanicked(tasks) => {
                write!(f, "tasks panicked: {}", tasks.join(", "))
            }
        }
    }
}

impl std::error::Error for RunError {}

/// One outgoing subscription as seen by a producer task.
struct OutEdge<M> {
    grouping: Grouping<M>,
    /// Sender to each task of the subscribing component.
    targets: Vec<Sender<Envelope<M>>>,
    /// Pending messages per target; flushed at `batch_size`, punctuation,
    /// EOS, and [`Outbox::flush`]. Unused (left unallocated) on the
    /// unbatched paths.
    bufs: Vec<Vec<M>>,
    /// Next shuffle target; always `< targets.len()` so target selection
    /// needs no modulo on the send path.
    cursor: usize,
    /// Feedback edges bypass batching: control loops stay low-latency and
    /// their channels unbounded (bounding a cycle could deadlock).
    feedback: bool,
}

impl<M> OutEdge<M> {
    /// Queue `msg` for `target`, shipping the buffer once it holds
    /// `batch_size` messages. Unbatched edges (`batch_size == 1`, feedback)
    /// send immediately without touching the buffers.
    #[inline]
    fn push(
        &mut self,
        target: usize,
        msg: M,
        from: usize,
        batch_size: usize,
        emitted: &mut u64,
        batches: &mut u64,
    ) {
        if batch_size <= 1 || self.feedback {
            if self.targets[target].send(Envelope::Data(msg, from)).is_ok() {
                *emitted += 1;
                *batches += 1;
            }
            return;
        }
        let buf = &mut self.bufs[target];
        if buf.capacity() == 0 {
            buf.reserve_exact(batch_size);
        }
        buf.push(msg);
        if buf.len() >= batch_size {
            Self::flush_target(
                &self.targets,
                &mut self.bufs,
                target,
                batch_size,
                from,
                emitted,
                batches,
            );
        }
    }

    /// Ship whatever is pending for `target` (no-op on an empty buffer).
    fn flush_target(
        targets: &[Sender<Envelope<M>>],
        bufs: &mut [Vec<M>],
        target: usize,
        batch_size: usize,
        from: usize,
        emitted: &mut u64,
        batches: &mut u64,
    ) {
        let buf = &mut bufs[target];
        match buf.len() {
            0 => {}
            1 => {
                let msg = buf.pop().expect("length checked");
                if targets[target].send(Envelope::Data(msg, from)).is_ok() {
                    *emitted += 1;
                    *batches += 1;
                }
            }
            n => {
                let full = std::mem::replace(buf, Vec::with_capacity(batch_size));
                if targets[target].send(Envelope::Batch(full, from)).is_ok() {
                    *emitted += n as u64;
                    *batches += 1;
                }
            }
        }
    }

    /// Ship every pending buffer of this edge.
    fn flush_all(&mut self, from: usize, batch_size: usize, emitted: &mut u64, batches: &mut u64) {
        if self.bufs.iter().all(Vec::is_empty) {
            return;
        }
        for t in 0..self.targets.len() {
            Self::flush_target(
                &self.targets,
                &mut self.bufs,
                t,
                batch_size,
                from,
                emitted,
                batches,
            );
        }
    }
}

/// The producer-side API handed to spouts and bolts.
pub struct Outbox<M> {
    my_global: usize,
    edges: Vec<OutEdge<M>>,
    /// Messages per transport batch on forward edges (1 = unbatched).
    batch_size: usize,
    emitted: u64,
    batches: u64,
}

impl<M: Clone> Outbox<M> {
    /// Emit `msg` to every non-direct subscription, routed per grouping.
    /// Each delivery clones; callers stream `Arc`-wrapped payloads, so a
    /// clone is a reference-count bump. Delivery may be deferred until the
    /// target's buffer fills, the next punctuation/EOS, or [`Outbox::flush`].
    pub fn emit(&mut self, msg: M) {
        let Outbox {
            my_global,
            edges,
            batch_size,
            emitted,
            batches,
        } = self;
        let (from, bs) = (*my_global, *batch_size);
        for edge in edges.iter_mut() {
            let n = edge.targets.len();
            let target = match &edge.grouping {
                Grouping::Direct => continue,
                // Whole batches round-robin across the subscriber's tasks:
                // the cursor advances when the current target's batch ships.
                Grouping::Shuffle => edge.cursor,
                Grouping::Fields(key) => (key(&msg) % n as u64) as usize,
                Grouping::Global => 0,
                Grouping::All => {
                    for t in 0..n {
                        edge.push(t, msg.clone(), from, bs, emitted, batches);
                    }
                    continue;
                }
            };
            edge.push(target, msg.clone(), from, bs, emitted, batches);
            if matches!(edge.grouping, Grouping::Shuffle)
                && (bs <= 1 || edge.feedback || edge.bufs[target].is_empty())
            {
                edge.cursor = if target + 1 == n { 0 } else { target + 1 };
            }
        }
    }

    /// Emit `msg` to task `task` of every direct-grouped subscription.
    pub fn emit_direct(&mut self, task: usize, msg: M) {
        let Outbox {
            my_global,
            edges,
            batch_size,
            emitted,
            batches,
        } = self;
        for edge in edges.iter_mut() {
            if matches!(edge.grouping, Grouping::Direct) && task < edge.targets.len() {
                edge.push(task, msg.clone(), *my_global, *batch_size, emitted, batches);
            }
        }
    }

    /// Ship every pending output buffer immediately. Emission already
    /// flushes at `batch_size`, punctuation, and EOS; call this to bound
    /// latency mid-window (e.g. before blocking on external work).
    pub fn flush(&mut self) {
        let Outbox {
            my_global,
            edges,
            batch_size,
            emitted,
            batches,
        } = self;
        for edge in edges.iter_mut() {
            edge.flush_all(*my_global, *batch_size, emitted, batches);
        }
    }

    /// Data buffered ahead of a punctuation belongs to the closing window:
    /// flush before sending the token so per-channel FIFO keeps windows
    /// exactly as an unbatched run would see them.
    fn punctuate(&mut self, p: u64) {
        self.flush();
        for edge in &mut self.edges {
            for t in &edge.targets {
                let _ = t.send(Envelope::Punct(p, self.my_global));
            }
        }
    }

    fn eos(&mut self) {
        self.flush();
        for edge in &mut self.edges {
            for t in &edge.targets {
                let _ = t.send(Envelope::Eos(self.my_global));
            }
        }
    }
}

struct TaskWiring<M> {
    info: TaskInfo,
    rx: Receiver<Envelope<M>>,
    outbox: Outbox<M>,
    fb_rx: Receiver<Envelope<M>>,
    /// Global ids of forward upstream tasks (gate punct/EOS).
    forward_upstreams: Vec<usize>,
    /// The component subscribes to at least one feedback edge: after EOS it
    /// drains in-flight control traffic until every sender disconnects.
    has_feedback_upstream: bool,
    kind: TaskKind<M>,
    /// This task's instrument set in the run's metrics registry.
    inst: Arc<TaskInstruments>,
    /// Window-close notifications to the collector thread (present only
    /// when full metrics collection is on).
    notify: Option<Sender<u64>>,
}

/// The executor's task-local metering state: plain (non-atomic) counters and
/// histograms on the hot path, published into the shared [`TaskInstruments`]
/// only at window boundaries and at end of stream.
struct TaskMeter {
    stats: TaskMetrics,
    handle_hist: LocalHistogram,
    close_hist: LocalHistogram,
    inst: Arc<TaskInstruments>,
    /// Full collection (histograms, traces, per-window snapshots) on?
    enabled: bool,
    /// Windows closed during the current receive step, pending publication
    /// and collector notification (always empty when collection is off).
    closed: Vec<u64>,
}

impl TaskMeter {
    fn new(info: &TaskInfo, inst: Arc<TaskInstruments>) -> Self {
        TaskMeter {
            stats: TaskMetrics {
                component: info.component.clone(),
                task: info.task_index,
                ..TaskMetrics::default()
            },
            handle_hist: LocalHistogram::new(),
            close_hist: LocalHistogram::new(),
            enabled: inst.enabled(),
            inst,
            closed: Vec::new(),
        }
    }

    /// Record a processed window boundary (close-to-emit span `dur`).
    fn window_closed(&mut self, p: u64, dur: Duration) {
        if !self.enabled {
            return;
        }
        self.close_hist.record_ns(dur.as_nanos() as u64);
        self.inst.trace(TraceKind::WindowClose, p, dur);
        self.closed.push(p);
    }

    /// Publish all task-local state into the shared instrument set.
    fn publish(&self, emitted: u64, batches: u64) {
        self.inst.publish_core(
            self.stats.received,
            emitted,
            batches,
            self.stats.puncts,
            self.stats.busy.as_nanos() as u64,
        );
        if self.enabled {
            self.inst
                .publish_histograms(&self.handle_hist, &self.close_hist);
        }
    }

    /// Window-boundary bookkeeping after a receive step that closed one or
    /// more windows: sample queue depth, publish locals, notify collector.
    #[cold]
    fn flush_windows(
        &mut self,
        emitted: u64,
        batches: u64,
        queue_depth: usize,
        notify: &Option<Sender<u64>>,
    ) {
        self.inst.queue_depth_gauge().set(queue_depth as i64);
        self.publish(emitted, batches);
        for w in self.closed.drain(..) {
            if let Some(tx) = notify {
                let _ = tx.send(w);
            }
        }
    }
}

enum TaskKind<M> {
    Spout(Box<dyn Spout<M>>),
    Bolt(Box<dyn Bolt<M>>),
}

/// Run a topology to completion and report per-task metrics.
pub fn run<M: Clone + Send + 'static>(topology: Topology<M>) -> Result<RunReport, RunError> {
    let Topology {
        components,
        index,
        channel_capacity,
        batch_size,
        metrics: metrics_on,
        trace_capacity,
    } = topology;
    let mut registry = MetricsRegistry::new(MetricsConfig {
        enabled: metrics_on,
        trace_capacity,
    });

    // Global task numbering: components in order, tasks within.
    let mut base: Vec<usize> = Vec::with_capacity(components.len());
    let mut total = 0usize;
    for c in &components {
        base.push(total);
        total += c.parallelism;
    }

    // Two channels per task: a *bounded* one for forward traffic (the
    // forward graph is a DAG, so bounded sends give deadlock-free
    // backpressure — a flooding spout is throttled by its slowest consumer;
    // with batching, in-flight data is bounded by `capacity × batch_size`
    // per channel) and an *unbounded* one for feedback control traffic
    // (bounding a cycle could deadlock).
    let cap = channel_capacity;
    let mut fwd_senders: Vec<Sender<Envelope<M>>> = Vec::with_capacity(total);
    let mut fwd_receivers: Vec<Option<Receiver<Envelope<M>>>> = Vec::with_capacity(total);
    let mut fb_senders: Vec<Sender<Envelope<M>>> = Vec::with_capacity(total);
    let mut fb_receivers: Vec<Option<Receiver<Envelope<M>>>> = Vec::with_capacity(total);
    for _ in 0..total {
        let (tx, rx) = bounded(cap);
        fwd_senders.push(tx);
        fwd_receivers.push(Some(rx));
        let (tx, rx) = unbounded();
        fb_senders.push(tx);
        fb_receivers.push(Some(rx));
    }

    // Outgoing edges per component: (grouping, subscriber component index).
    let mut out_edges: Vec<Vec<(Grouping<M>, usize, bool)>> = vec![Vec::new(); components.len()];
    for (ci, c) in components.iter().enumerate() {
        for Subscription {
            source,
            grouping,
            feedback,
        } in &c.subscriptions
        {
            let si = index[source];
            out_edges[si].push((grouping.clone(), ci, *feedback));
        }
    }

    // Forward upstream task lists per component, and feedback presence.
    let mut forward_upstreams: Vec<Vec<usize>> = vec![Vec::new(); components.len()];
    let mut has_feedback: Vec<bool> = vec![false; components.len()];
    for (ci, c) in components.iter().enumerate() {
        for s in &c.subscriptions {
            if s.feedback {
                has_feedback[ci] = true;
            } else {
                let si = index[&s.source];
                for t in 0..components[si].parallelism {
                    forward_upstreams[ci].push(base[si] + t);
                }
            }
        }
    }

    // Build task wirings.
    let par: Vec<usize> = components.iter().map(|c| c.parallelism).collect();
    let mut wirings: Vec<TaskWiring<M>> = Vec::with_capacity(total);
    for (ci, c) in components.into_iter().enumerate() {
        let Component {
            name,
            parallelism,
            kind,
            subscriptions: _,
        } = c;
        for task in 0..parallelism {
            let global = base[ci] + task;
            let edges: Vec<OutEdge<M>> = out_edges[ci]
                .iter()
                .map(|(grouping, target_ci, feedback)| {
                    let n = par[*target_ci];
                    // The builder rejects zero parallelism, so every edge
                    // has at least one target; the shuffle cursor relies on
                    // this to advance without re-checking.
                    debug_assert!(n > 0, "edge to component {target_ci} has no target tasks");
                    OutEdge {
                        grouping: grouping.clone(),
                        targets: (0..n)
                            .map(|t| {
                                let g = base[*target_ci] + t;
                                if *feedback {
                                    fb_senders[g].clone()
                                } else {
                                    fwd_senders[g].clone()
                                }
                            })
                            .collect(),
                        bufs: (0..n).map(|_| Vec::new()).collect(),
                        // Stagger shuffle cursors per producer so k producers
                        // doing round-robin do not all hit the same target.
                        cursor: global % n,
                        feedback: *feedback,
                    }
                })
                .collect();
            let outbox = Outbox {
                my_global: global,
                edges,
                batch_size,
                emitted: 0,
                batches: 0,
            };
            let instance = match &kind {
                ComponentKind::Spout(f) => TaskKind::Spout(f(task)),
                ComponentKind::Bolt(f) => TaskKind::Bolt(f(task)),
            };
            wirings.push(TaskWiring {
                info: TaskInfo {
                    component: name.clone(),
                    task_index: task,
                    parallelism,
                },
                rx: fwd_receivers[global].take().expect("receiver unclaimed"),
                fb_rx: fb_receivers[global].take().expect("fb receiver unclaimed"),
                outbox,
                forward_upstreams: forward_upstreams[ci].clone(),
                has_feedback_upstream: has_feedback[ci],
                kind: instance,
                inst: registry.register(&name, task),
                notify: None, // filled in below once the collector exists
            });
        }
    }
    drop(fwd_senders); // tasks own the only senders now (inside outboxes)
    drop(fb_senders);
    drop(fwd_receivers);
    drop(fb_receivers);

    // With full collection on, a collector thread turns per-task
    // window-close notifications into per-punctuation registry snapshots:
    // once every task reported window `w`, all locals covering `w` have
    // been published and a whole-registry snapshot is consistent.
    let registry = Arc::new(registry);
    let collector = if metrics_on {
        let (tx, rx) = unbounded::<u64>();
        for w in &mut wirings {
            w.notify = Some(tx.clone());
        }
        drop(tx); // tasks hold the only senders; disconnect ends the thread
        let reg = Arc::clone(&registry);
        Some(
            std::thread::Builder::new()
                .name("metrics-collector".to_owned())
                .spawn(move || collect_windows(rx, reg, total))
                .expect("spawn collector thread"),
        )
    } else {
        None
    };

    let mut handles = Vec::with_capacity(wirings.len());
    for wiring in wirings {
        let label = format!("{}[{}]", wiring.info.component, wiring.info.task_index);
        let handle = std::thread::Builder::new()
            .name(label.clone())
            .spawn(move || run_task(wiring))
            .expect("spawn task thread");
        handles.push((label, handle));
    }

    let mut panicked = Vec::new();
    for (label, handle) in handles {
        if handle.join().is_err() {
            panicked.push(label);
        }
    }
    // All task threads are gone, so all notify senders are dropped and the
    // collector terminates even after a panic.
    let windows = collector
        .map(|h| h.join().expect("collector thread panicked"))
        .unwrap_or_default();
    if !panicked.is_empty() {
        return Err(RunError::TaskPanicked(panicked));
    }
    Ok(RunReport {
        tasks: registry.snapshot_tasks(),
        windows,
        trace: registry.trace().events(),
    })
}

/// Collector loop: count window-close notifications; when all `total` tasks
/// reported window `w`, snapshot the whole registry for it.
fn collect_windows(
    rx: Receiver<u64>,
    registry: Arc<MetricsRegistry>,
    total: usize,
) -> Vec<WindowSnapshot> {
    let mut counts: HashMap<u64, usize> = HashMap::new();
    let mut snaps: Vec<WindowSnapshot> = Vec::new();
    while let Ok(w) = rx.recv() {
        let c = counts.entry(w).or_insert(0);
        *c += 1;
        if *c == total {
            counts.remove(&w);
            snaps.push(WindowSnapshot {
                window: w,
                tasks: registry.snapshot_tasks(),
            });
        }
    }
    // Alignment means completion order is ascending in practice, but the
    // channel interleaving is not guaranteed; keep the series sorted.
    snaps.sort_by_key(|s| s.window);
    snaps
}

/// Alignment state for one forward upstream task.
struct UpstreamState<M> {
    /// Punctuations processed but not yet aligned; `> 0` means *blocked* —
    /// envelopes from this upstream are buffered, not processed.
    ahead: u32,
    /// Buffered envelopes while blocked, FIFO.
    queue: VecDeque<Envelope<M>>,
    /// Already enqueued in the aligner's ready queue.
    in_ready: bool,
}

/// Punctuation alignment with per-upstream blocking.
///
/// A forward upstream that has already punctuated the window being aligned
/// is *blocked*: its subsequent envelopes are buffered until the punctuation
/// has arrived from every forward upstream. This keeps window contents exact
/// even when upstream tasks run at different speeds — without it, data from
/// fast upstreams would leak into the previous window.
///
/// Upstream state lives in a dense `Vec` indexed through a one-time global
/// id → slot map (with a last-sender cache, since consecutive envelopes
/// usually share a sender), and upstreams unblocked by a completed
/// alignment go onto a ready queue — replay is O(1) amortized per buffered
/// envelope instead of a scan over all upstreams per step.
struct Aligner<M> {
    states: Vec<UpstreamState<M>>,
    /// Global upstream task id → slot in `states`.
    index_of: HashMap<usize, usize>,
    /// `(global, slot)` of the last sender seen.
    last: Option<(usize, usize)>,
    needed: usize,
    punct_counts: HashMap<u64, usize>,
    eos_seen: usize,
    /// Slots that became unblocked while holding buffered envelopes.
    ready: VecDeque<usize>,
}

impl<M: Clone> Aligner<M> {
    fn new(forward_upstreams: &[usize]) -> Self {
        Aligner {
            states: forward_upstreams
                .iter()
                .map(|_| UpstreamState {
                    ahead: 0,
                    queue: VecDeque::new(),
                    in_ready: false,
                })
                .collect(),
            index_of: forward_upstreams
                .iter()
                .enumerate()
                .map(|(slot, &g)| (g, slot))
                .collect(),
            last: None,
            needed: forward_upstreams.len(),
            punct_counts: HashMap::new(),
            eos_seen: 0,
            ready: VecDeque::new(),
        }
    }

    /// Slot of a forward upstream, `None` for feedback senders.
    #[inline]
    fn slot_of(&mut self, from: usize) -> Option<usize> {
        if let Some((global, slot)) = self.last {
            if global == from {
                return Some(slot);
            }
        }
        let slot = self.index_of.get(&from).copied()?;
        self.last = Some((from, slot));
        Some(slot)
    }

    /// Feed one envelope; returns `true` once every forward upstream
    /// delivered EOS.
    fn handle(
        &mut self,
        env: Envelope<M>,
        bolt: &mut dyn Bolt<M>,
        out: &mut Outbox<M>,
        m: &mut TaskMeter,
    ) -> bool {
        let from = env.source_task();
        let Some(slot) = self.slot_of(from) else {
            // Feedback edge: data flows immediately, control is ignored.
            match env {
                Envelope::Data(msg, _) => {
                    m.stats.received += 1;
                    bolt.execute(msg, out);
                }
                Envelope::Batch(msgs, _) => {
                    m.stats.received += msgs.len() as u64;
                    for msg in msgs {
                        bolt.execute(msg, out);
                    }
                }
                _ => {}
            }
            return false;
        };
        if self.states[slot].ahead > 0 {
            self.states[slot].queue.push_back(env);
        } else {
            self.process(slot, env, bolt, out, m);
            self.drain(bolt, out, m);
        }
        self.eos_seen == self.needed
    }

    fn process(
        &mut self,
        slot: usize,
        env: Envelope<M>,
        bolt: &mut dyn Bolt<M>,
        out: &mut Outbox<M>,
        m: &mut TaskMeter,
    ) {
        match env {
            Envelope::Data(msg, _) => {
                m.stats.received += 1;
                bolt.execute(msg, out);
            }
            Envelope::Batch(msgs, _) => {
                m.stats.received += msgs.len() as u64;
                for msg in msgs {
                    bolt.execute(msg, out);
                }
            }
            Envelope::Punct(p, _) => {
                self.states[slot].ahead += 1;
                let c = self.punct_counts.entry(p).or_insert(0);
                *c += 1;
                if *c == self.needed {
                    self.punct_counts.remove(&p);
                    // Close-to-emit span: window work plus output flush.
                    let t0 = m.enabled.then(Instant::now);
                    m.stats.puncts += 1;
                    bolt.on_punct(p, out);
                    out.punctuate(p);
                    if let Some(t0) = t0 {
                        m.window_closed(p, t0.elapsed());
                    }
                    // Retire each upstream's oldest outstanding punctuation;
                    // upstreams that held buffered envelopes become ready.
                    for (i, st) in self.states.iter_mut().enumerate() {
                        st.ahead = st.ahead.saturating_sub(1);
                        if st.ahead == 0 && !st.queue.is_empty() && !st.in_ready {
                            st.in_ready = true;
                            self.ready.push_back(i);
                        }
                    }
                }
            }
            Envelope::Eos(_) => self.eos_seen += 1,
        }
    }

    /// Replay buffered envelopes from upstreams that are no longer blocked;
    /// an alignment completed during replay can enqueue further upstreams.
    fn drain(&mut self, bolt: &mut dyn Bolt<M>, out: &mut Outbox<M>, m: &mut TaskMeter) {
        while let Some(slot) = self.ready.pop_front() {
            self.states[slot].in_ready = false;
            while self.states[slot].ahead == 0 {
                let Some(env) = self.states[slot].queue.pop_front() else {
                    break;
                };
                self.process(slot, env, bolt, out, m);
            }
        }
    }
}

fn run_task<M: Clone + Send + 'static>(w: TaskWiring<M>) {
    let TaskWiring {
        info,
        rx,
        fb_rx,
        mut outbox,
        forward_upstreams,
        has_feedback_upstream,
        kind,
        inst,
        notify,
    } = w;
    let mut meter = TaskMeter::new(&info, inst);

    match kind {
        TaskKind::Spout(mut spout) => loop {
            let t0 = Instant::now();
            let emission = spout.next();
            meter.stats.busy += t0.elapsed();
            match emission {
                SpoutEmit::Message(msg) => {
                    outbox.emit(msg);
                }
                SpoutEmit::Punctuate(p) => {
                    let t0 = meter.enabled.then(Instant::now);
                    meter.stats.puncts += 1;
                    outbox.punctuate(p);
                    if let Some(t0) = t0 {
                        meter.window_closed(p, t0.elapsed());
                        meter.flush_windows(outbox.emitted, outbox.batches, 0, &notify);
                    }
                }
                SpoutEmit::Done => {
                    outbox.eos();
                    break;
                }
            }
        },
        TaskKind::Bolt(mut bolt) => {
            bolt.attach_instruments(&meter.inst);
            bolt.prepare(&info);
            let mut align = Aligner::new(&forward_upstreams);
            let mut fwd_open = true;
            let mut fb_open = has_feedback_upstream;
            // One receive step: time the envelope into busy and the handle
            // histogram (scaled to the tuples it carried), and run the
            // window-boundary bookkeeping when the step closed windows.
            macro_rules! step {
                ($envelope:expr) => {{
                    let t0 = Instant::now();
                    let before = meter.stats.received;
                    let done = align.handle($envelope, bolt.as_mut(), &mut outbox, &mut meter);
                    let dt = t0.elapsed();
                    meter.stats.busy += dt;
                    if meter.enabled {
                        meter
                            .handle_hist
                            .record_scaled(dt.as_nanos() as u64, meter.stats.received - before);
                        if !meter.closed.is_empty() {
                            meter.flush_windows(outbox.emitted, outbox.batches, rx.len(), &notify);
                        }
                    }
                    done
                }};
            }
            // The selector over the forward (bounded) and feedback
            // (unbounded) channels is built ONCE, outside the receive loop —
            // rebuilding it per message was a measurable per-tuple cost. It
            // is only consulted while both channels are live; with a single
            // live channel the loop below falls back to a plain `recv`.
            let mut sel = Select::new();
            let fwd_idx = sel.recv(&rx);
            let fb_idx = sel.recv(&fb_rx);
            while fwd_open {
                if !fb_open {
                    // Hot path (no feedback upstream, or feedback senders
                    // already gone): single-channel blocking receive.
                    match rx.recv() {
                        Ok(envelope) => {
                            if step!(envelope) {
                                break; // all forward upstreams at EOS
                            }
                        }
                        // All forward senders gone (e.g. upstream panicked).
                        Err(_) => fwd_open = false,
                    }
                    continue;
                }
                let op = sel.select();
                let idx = op.index();
                if idx == fwd_idx {
                    match op.recv(&rx) {
                        Ok(envelope) => {
                            if step!(envelope) {
                                break; // all forward upstreams at EOS
                            }
                        }
                        Err(_) => fwd_open = false,
                    }
                } else if idx == fb_idx {
                    match op.recv(&fb_rx) {
                        Ok(envelope) => {
                            let _ = step!(envelope);
                        }
                        Err(_) => fb_open = false,
                    }
                }
            }
            bolt.finish(&mut outbox);
            outbox.eos();
            if has_feedback_upstream {
                // Control loops may still be sending while their own
                // shutdown propagates; drain and process those messages so
                // adaptive state and counters stay exact. Feedback senders
                // terminate on forward EOS and drop the channel, ending
                // this loop. (Feedback edges must therefore not form cycles
                // among themselves.)
                while let Ok(envelope) = fb_rx.recv() {
                    let _ = step!(envelope);
                }
            }
        }
    }

    meter.stats.emitted = outbox.emitted;
    meter.stats.batches = outbox.batches;
    if meter.enabled {
        meter.inst.trace(TraceKind::Eos, u64::MAX, Duration::ZERO);
    }
    meter.publish(outbox.emitted, outbox.batches);
    // `notify` (if any) drops here; the collector ends once every task's
    // sender is gone.
}
