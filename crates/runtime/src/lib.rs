//! # ssj-runtime — a compact Storm-like stream processing runtime
//!
//! The substrate the paper runs on (Apache Storm, §III-B), rebuilt from
//! scratch: topologies of **spouts** and **bolts** with per-component
//! parallelism and the Storm stream groupings (*shuffle*, *fields*, *all*,
//! *direct*, *global*), executed as one thread per task over crossbeam
//! channels. Window boundaries travel as aligned punctuations; control
//! loops (Merger → Assigner → Merger in Fig. 2) use feedback edges.
//!
//! Forward-edge transport is micro-batched: producers buffer up to
//! [`TopologyBuilder::batch_size`] messages per target and ship them as one
//! envelope, flushing on punctuation and EOS so windows stay exact (see the
//! module docs of the executor). Feedback edges are never batched.
//!
//! ```
//! use ssj_runtime::{TopologyBuilder, Grouping, VecSpout, CollectorBolt, run};
//!
//! let sink = CollectorBolt::new();
//! let collected = sink.handle();
//! let topology = TopologyBuilder::new()
//!     .spout("numbers", 1, |_| VecSpout::boxed(vec![1, 2, 3]))
//!     .bolt("double", 2, |_| ssj_runtime::fn_bolt(|x: i32, out| out.emit(x * 2)))
//!     .subscribe("numbers", Grouping::Shuffle)
//!     .done()
//!     .bolt("sink", 1, move |_| Box::new(sink.clone()))
//!     .subscribe("double", Grouping::Global)
//!     .done()
//!     .build()
//!     .unwrap();
//! run(topology).unwrap();
//! let mut got = collected.take();
//! got.sort();
//! assert_eq!(got, vec![2, 4, 6]);
//! ```

#![warn(missing_docs)]

mod executor;
pub mod fault;
pub mod metrics;
mod sched;
pub mod topology;
pub mod transport;
pub mod wire;

pub use executor::{run, run_distributed, Outbox, RunError, RunReport, TaskMetrics};
pub use fault::{FaultKind, FaultPanic, FaultPlan, FaultSpec, RecoveryPolicy};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, TaskInstruments, TaskSnapshot, TraceEvent,
    TraceKind, WindowSnapshot,
};
pub use topology::{
    BoltHandle, Grouping, SchedulerMode, ShedPredicate, Topology, TopologyBuilder, TopologyError,
};
pub use transport::{join_group, Group, GroupSetup};
pub use wire::WireCodec;

use parking_lot::Mutex;
use std::sync::Arc;

/// Identity of a task, passed to [`Bolt::prepare`].
#[derive(Debug, Clone)]
pub struct TaskInfo {
    /// The component this task belongs to.
    pub component: String,
    /// Index of the task within the component (0-based).
    pub task_index: usize,
    /// Total number of tasks of the component.
    pub parallelism: usize,
}

/// What a spout produces on each call to [`Spout::next`].
pub enum SpoutEmit<M> {
    /// A data message.
    Message(M),
    /// A punctuation (window boundary) with an id; forwarded and aligned
    /// through the whole topology.
    Punctuate(u64),
    /// The spout is exhausted; triggers end-of-stream shutdown.
    Done,
}

/// A stream source. One instance runs per task.
pub trait Spout<M>: Send {
    /// Produce the next emission. Called in a tight loop by the executor.
    fn next(&mut self) -> SpoutEmit<M>;
}

/// Opaque, owned snapshot of a bolt's cross-window state, produced by
/// [`Bolt::snapshot`] at a window boundary and handed back to a fresh
/// instance through [`Bolt::restore`] after a supervised restart.
pub type BoltState = Box<dyn std::any::Any + Send>;

/// A stream processor. One instance runs per task.
pub trait Bolt<M>: Send {
    /// Called once before [`Bolt::prepare`] with this task's instrument set
    /// in the run's metrics registry. Register named counters, gauges, and
    /// histograms here, keep the returned `Arc` handles, and record into
    /// them from the message path; check
    /// [`TaskInstruments::enabled`](metrics::TaskInstruments::enabled) to
    /// skip work when full collection is off.
    fn attach_instruments(&mut self, _inst: &std::sync::Arc<metrics::TaskInstruments>) {}

    /// Called once before any message, with the task's identity.
    fn prepare(&mut self, _info: &TaskInfo) {}
    /// Handle one message; emit results through `out`.
    fn execute(&mut self, msg: M, out: &mut Outbox<M>);
    /// Handle an aligned punctuation (window boundary).
    fn on_punct(&mut self, _punct: u64, _out: &mut Outbox<M>) {}
    /// Called once after the last message, before shutdown.
    fn finish(&mut self, _out: &mut Outbox<M>) {}

    /// Capture the bolt's *cross-window* state. The supervisor calls this
    /// at every window boundary (right after the aligned punctuation has
    /// been handled); after a crash it rebuilds the task from the latest
    /// snapshot and replays the envelopes received since, so state local to
    /// the current window need not be captured — replay reconstructs it.
    /// The default `None` means "stateless across windows": restart with a
    /// fresh instance plus replay is already exact.
    fn snapshot(&self) -> Option<BoltState> {
        None
    }

    /// Rebuild cross-window state from a [`Bolt::snapshot`] taken by a
    /// previous incarnation of this task. Called on a freshly constructed
    /// instance after `attach_instruments`/`prepare` and before replay.
    /// Returning `Err` counts as a failed restart attempt (consumes a
    /// retry). The default accepts anything and restores nothing, matching
    /// the default `snapshot`.
    fn restore(&mut self, _state: &BoltState) -> Result<(), String> {
        Ok(())
    }
}

/// A spout replaying a vector, punctuating optionally every `punct_every`
/// messages — handy in tests and examples.
pub struct VecSpout<M> {
    items: std::vec::IntoIter<M>,
    punct_every: Option<usize>,
    since_punct: usize,
    next_punct: u64,
    done: bool,
}

impl<M: Send + 'static> VecSpout<M> {
    /// Replay `items` with no punctuation.
    pub fn new(items: Vec<M>) -> Self {
        VecSpout {
            items: items.into_iter(),
            punct_every: None,
            since_punct: 0,
            next_punct: 0,
            done: false,
        }
    }

    /// Replay `items`, punctuating after every `every` messages and once
    /// more before finishing.
    pub fn with_punctuation(items: Vec<M>, every: usize) -> Self {
        let mut s = Self::new(items);
        s.punct_every = Some(every.max(1));
        s
    }

    /// Boxed constructor for use in topology factories.
    pub fn boxed(items: Vec<M>) -> Box<dyn Spout<M>> {
        Box::new(Self::new(items))
    }
}

impl<M: Send + 'static> Spout<M> for VecSpout<M> {
    fn next(&mut self) -> SpoutEmit<M> {
        if self.done {
            return SpoutEmit::Done;
        }
        if let Some(every) = self.punct_every {
            if self.since_punct == every {
                self.since_punct = 0;
                let p = self.next_punct;
                self.next_punct += 1;
                return SpoutEmit::Punctuate(p);
            }
        }
        match self.items.next() {
            Some(m) => {
                self.since_punct += 1;
                SpoutEmit::Message(m)
            }
            None => {
                self.done = true;
                if self.punct_every.is_some() && self.since_punct > 0 {
                    let p = self.next_punct;
                    self.next_punct += 1;
                    return SpoutEmit::Punctuate(p);
                }
                SpoutEmit::Done
            }
        }
    }
}

/// A spout replaying items against a precomputed *virtual arrival
/// schedule* (open-loop traffic): item `i` is held back until
/// `schedule[i]` nanoseconds after the first emission. The schedule is
/// pure data computed up front (no wall clock shapes it), so the same
/// seed always offers the same load; only the pacing against it reads the
/// clock. The shared `anchor` is set at the first emission — latency
/// consumers subtract `schedule[i]` from time-since-anchor, charging each
/// tuple from its *intended* arrival rather than its actual send, so
/// queueing delay in an overloaded topology shows up as latency instead
/// of being absorbed by a slowed-down source (no coordinated omission).
///
/// Punctuates after every `punct_every` items and once more at the end,
/// like [`VecSpout::with_punctuation`].
pub struct PacedSpout<M> {
    items: std::vec::IntoIter<M>,
    schedule: std::vec::IntoIter<u64>,
    punct_every: usize,
    since_punct: usize,
    next_punct: u64,
    done: bool,
    anchor: Arc<std::sync::OnceLock<std::time::Instant>>,
}

impl<M: Send + 'static> PacedSpout<M> {
    /// Pace `items` against `schedule` (same length, non-decreasing
    /// virtual nanoseconds), punctuating every `punct_every` items.
    pub fn new(
        items: Vec<M>,
        schedule: Vec<u64>,
        punct_every: usize,
        anchor: Arc<std::sync::OnceLock<std::time::Instant>>,
    ) -> Self {
        assert_eq!(items.len(), schedule.len(), "one arrival time per item");
        PacedSpout {
            items: items.into_iter(),
            schedule: schedule.into_iter(),
            punct_every: punct_every.max(1),
            since_punct: 0,
            next_punct: 0,
            done: false,
            anchor,
        }
    }
}

impl<M: Send + 'static> Spout<M> for PacedSpout<M> {
    fn next(&mut self) -> SpoutEmit<M> {
        if self.done {
            return SpoutEmit::Done;
        }
        if self.since_punct == self.punct_every {
            self.since_punct = 0;
            let p = self.next_punct;
            self.next_punct += 1;
            return SpoutEmit::Punctuate(p);
        }
        match (self.items.next(), self.schedule.next()) {
            (Some(m), Some(at)) => {
                let anchor = *self.anchor.get_or_init(std::time::Instant::now);
                // Sleep in coarse slices, then let the final slice land us
                // at (or just past) the scheduled instant.
                loop {
                    let elapsed = anchor.elapsed().as_nanos() as u64;
                    if elapsed >= at {
                        break;
                    }
                    let left = at - elapsed;
                    std::thread::sleep(std::time::Duration::from_nanos(left.min(200_000)));
                }
                self.since_punct += 1;
                SpoutEmit::Message(m)
            }
            _ => {
                self.done = true;
                if self.since_punct > 0 {
                    let p = self.next_punct;
                    self.next_punct += 1;
                    return SpoutEmit::Punctuate(p);
                }
                SpoutEmit::Done
            }
        }
    }
}

/// Wrap a closure as a bolt.
pub fn fn_bolt<M, F>(f: F) -> Box<dyn Bolt<M>>
where
    M: Send + 'static,
    F: FnMut(M, &mut Outbox<M>) + Send + 'static,
{
    struct FnBolt<F>(F);
    impl<M: Send + 'static, F: FnMut(M, &mut Outbox<M>) + Send + 'static> Bolt<M> for FnBolt<F> {
        fn execute(&mut self, msg: M, out: &mut Outbox<M>) {
            (self.0)(msg, out)
        }
    }
    Box::new(FnBolt(f))
}

/// A sink bolt collecting every message into a shared vector.
pub struct CollectorBolt<M> {
    sink: Arc<Mutex<Vec<M>>>,
}

impl<M> Clone for CollectorBolt<M> {
    fn clone(&self) -> Self {
        CollectorBolt {
            sink: Arc::clone(&self.sink),
        }
    }
}

impl<M> Default for CollectorBolt<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> CollectorBolt<M> {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        CollectorBolt {
            sink: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle to read the collected messages after the run.
    pub fn handle(&self) -> CollectorHandle<M> {
        CollectorHandle {
            sink: Arc::clone(&self.sink),
        }
    }
}

impl<M: Send + 'static> Bolt<M> for CollectorBolt<M> {
    fn execute(&mut self, msg: M, _out: &mut Outbox<M>) {
        self.sink.lock().push(msg);
    }
}

/// Read side of a [`CollectorBolt`].
pub struct CollectorHandle<M> {
    sink: Arc<Mutex<Vec<M>>>,
}

impl<M> CollectorHandle<M> {
    /// Take all collected messages.
    pub fn take(&self) -> Vec<M> {
        std::mem::take(&mut *self.sink.lock())
    }

    /// Number of collected messages.
    pub fn len(&self) -> usize {
        self.sink.lock().len()
    }

    /// True when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.sink.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_ints(topology: Topology<i32>, handle: &CollectorHandle<i32>) -> Vec<i32> {
        run(topology).unwrap();
        let mut v = handle.take();
        v.sort();
        v
    }

    #[test]
    fn linear_pipeline_shuffle() {
        let sink = CollectorBolt::new();
        let handle = sink.handle();
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| VecSpout::boxed((1..=100).collect()))
            .bolt("add", 4, |_| fn_bolt(|x: i32, out| out.emit(x + 1)))
            .subscribe("src", Grouping::Shuffle)
            .done()
            .bolt("sink", 1, move |_| Box::new(sink.clone()))
            .subscribe("add", Grouping::Global)
            .done()
            .build()
            .unwrap();
        assert_eq!(collect_ints(t, &handle), (2..=101).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_balances_across_tasks() {
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| VecSpout::boxed((0..1000).collect()))
            .bolt("work", 4, |_| fn_bolt(|_x: i32, _out| {}))
            .subscribe("src", Grouping::Shuffle)
            .done()
            .build()
            .unwrap();
        let report = run(t).unwrap();
        let per_task = report.received_per_task("work");
        assert_eq!(per_task.len(), 4);
        for &r in &per_task {
            assert_eq!(r, 250, "round-robin must be perfectly even: {per_task:?}");
        }
    }

    #[test]
    fn fields_grouping_routes_equal_keys_together() {
        let seen = Arc::new(Mutex::new(Vec::<(usize, i32)>::new()));
        let seen2 = Arc::clone(&seen);
        struct Tagger {
            task: usize,
            seen: Arc<Mutex<Vec<(usize, i32)>>>,
        }
        impl Bolt<i32> for Tagger {
            fn prepare(&mut self, info: &TaskInfo) {
                self.task = info.task_index;
            }
            fn execute(&mut self, msg: i32, _out: &mut Outbox<i32>) {
                self.seen.lock().push((self.task, msg));
            }
        }
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| {
                VecSpout::boxed(vec![1, 2, 3, 1, 2, 3, 1, 2, 3])
            })
            .bolt("part", 3, move |_| {
                Box::new(Tagger {
                    task: usize::MAX,
                    seen: Arc::clone(&seen2),
                })
            })
            .subscribe("src", Grouping::Fields(Arc::new(|x: &i32| *x as u64)))
            .done()
            .build()
            .unwrap();
        run(t).unwrap();
        // Same key always lands on the same task.
        let log = seen.lock();
        for key in [1, 2, 3] {
            let tasks: std::collections::HashSet<usize> = log
                .iter()
                .filter(|(_, k)| *k == key)
                .map(|(t, _)| *t)
                .collect();
            assert_eq!(tasks.len(), 1, "key {key} hit tasks {tasks:?}");
        }
    }

    #[test]
    fn all_grouping_replicates() {
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| VecSpout::boxed(vec![7; 10]))
            .bolt("bcast", 3, |_| fn_bolt(|_x: i32, _out| {}))
            .subscribe("src", Grouping::All)
            .done()
            .build()
            .unwrap();
        let report = run(t).unwrap();
        assert_eq!(report.received("bcast"), 30);
        assert_eq!(report.received_per_task("bcast"), vec![10, 10, 10]);
    }

    #[test]
    fn direct_grouping_targets_chosen_task() {
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| VecSpout::boxed((0..9).collect()))
            .bolt("router", 1, |_| {
                fn_bolt(|x: i32, out: &mut Outbox<i32>| out.emit_direct((x % 3) as usize, x))
            })
            .subscribe("src", Grouping::Shuffle)
            .done()
            .bolt("worker", 3, |_| fn_bolt(|_x: i32, _out| {}))
            .subscribe("router", Grouping::Direct)
            .done()
            .build()
            .unwrap();
        let report = run(t).unwrap();
        assert_eq!(report.received_per_task("worker"), vec![3, 3, 3]);
    }

    #[test]
    fn global_grouping_hits_task_zero() {
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| VecSpout::boxed((0..5).collect()))
            .bolt("g", 3, |_| fn_bolt(|_x: i32, _out| {}))
            .subscribe("src", Grouping::Global)
            .done()
            .build()
            .unwrap();
        let report = run(t).unwrap();
        assert_eq!(report.received_per_task("g"), vec![5, 0, 0]);
    }

    #[test]
    fn punctuation_aligned_across_parallel_stage() {
        // Windowed counter: counts per punctuated window must survive an
        // intermediate parallel stage (punct seen once per window).
        struct WindowCounter {
            count: u64,
            out: Arc<Mutex<Vec<u64>>>,
        }
        impl Bolt<i32> for WindowCounter {
            fn execute(&mut self, _msg: i32, _out: &mut Outbox<i32>) {
                self.count += 1;
            }
            fn on_punct(&mut self, _p: u64, _out: &mut Outbox<i32>) {
                self.out.lock().push(self.count);
                self.count = 0;
            }
        }
        let windows = Arc::new(Mutex::new(Vec::new()));
        let w2 = Arc::clone(&windows);
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| {
                Box::new(VecSpout::with_punctuation((0..20).collect(), 5))
            })
            .bolt("mid", 3, |_| fn_bolt(|x: i32, out| out.emit(x)))
            .subscribe("src", Grouping::Shuffle)
            .done()
            .bolt("win", 1, move |_| {
                Box::new(WindowCounter {
                    count: 0,
                    out: Arc::clone(&w2),
                })
            })
            .subscribe("mid", Grouping::Global)
            .done()
            .build()
            .unwrap();
        run(t).unwrap();
        let got = windows.lock().clone();
        assert_eq!(got, vec![5, 5, 5, 5]);
    }

    #[test]
    fn multiple_spout_tasks_align_punctuation() {
        struct PunctCount {
            puncts: Arc<Mutex<u64>>,
        }
        impl Bolt<i32> for PunctCount {
            fn execute(&mut self, _m: i32, _o: &mut Outbox<i32>) {}
            fn on_punct(&mut self, _p: u64, _o: &mut Outbox<i32>) {
                *self.puncts.lock() += 1;
            }
        }
        let puncts = Arc::new(Mutex::new(0u64));
        let p2 = Arc::clone(&puncts);
        let t = TopologyBuilder::new()
            .spout("src", 3, |_| {
                Box::new(VecSpout::with_punctuation(vec![1, 2, 3, 4], 2))
            })
            .bolt("win", 1, move |_| {
                Box::new(PunctCount {
                    puncts: Arc::clone(&p2),
                })
            })
            .subscribe("src", Grouping::Global)
            .done()
            .build()
            .unwrap();
        run(t).unwrap();
        // Each of the 3 spout tasks punctuates twice (ids 0 and 1); aligned
        // → the bolt sees each id exactly once.
        assert_eq!(*puncts.lock(), 2);
    }

    #[test]
    fn feedback_edge_allows_cycles() {
        // fwd: src -> a -> b ; feedback: b -> a. b echoes messages back to
        // a once; a counts both originals and echoes.
        #[derive(Clone)]
        enum Msg {
            Fresh(i32),
            Echo,
        }
        let count = Arc::new(Mutex::new(0i32));
        let c2 = Arc::clone(&count);
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| {
                VecSpout::boxed((0..10).map(Msg::Fresh).collect())
            })
            .bolt("a", 1, move |_| {
                let c = Arc::clone(&c2);
                fn_bolt(move |m: Msg, out: &mut Outbox<Msg>| {
                    *c.lock() += 1;
                    if let Msg::Fresh(x) = m {
                        out.emit(Msg::Fresh(x));
                    }
                })
            })
            .subscribe("src", Grouping::Shuffle)
            .subscribe_feedback("b", Grouping::Shuffle)
            .done()
            .bolt("b", 1, |_| {
                fn_bolt(|m: Msg, out: &mut Outbox<Msg>| {
                    if let Msg::Fresh(_x) = m {
                        out.emit(Msg::Echo);
                    }
                })
            })
            .subscribe("a", Grouping::Shuffle)
            .done()
            .build()
            .unwrap();
        run(t).unwrap();
        // a sees 10 fresh; echoes are best-effort (a may already have shut
        // down), so the count is between 10 and 20.
        let seen = *count.lock();
        assert!((10..=20).contains(&seen), "a saw {seen}");
    }

    #[test]
    fn forward_cycle_rejected() {
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| VecSpout::boxed(vec![1]))
            .bolt("a", 1, |_| fn_bolt(|_: i32, _| {}))
            .subscribe("src", Grouping::Shuffle)
            .subscribe("b", Grouping::Shuffle)
            .done()
            .bolt("b", 1, |_| fn_bolt(|_: i32, _| {}))
            .subscribe("a", Grouping::Shuffle)
            .done()
            .build();
        assert!(matches!(t, Err(TopologyError::ForwardCycle(_))));
    }

    #[test]
    fn unknown_source_rejected() {
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| VecSpout::boxed(vec![1]))
            .bolt("a", 1, |_| fn_bolt(|_: i32, _| {}))
            .subscribe("ghost", Grouping::Shuffle)
            .done()
            .build();
        assert!(matches!(t, Err(TopologyError::UnknownSource { .. })));
    }

    #[test]
    fn duplicate_component_rejected() {
        let t = TopologyBuilder::new()
            .spout("x", 1, |_| VecSpout::boxed(vec![1]))
            .bolt("x", 1, |_| fn_bolt(|_: i32, _| {}))
            .subscribe("x", Grouping::Shuffle)
            .done()
            .build();
        assert!(matches!(t, Err(TopologyError::DuplicateComponent(_))));
    }

    #[test]
    fn no_spout_rejected() {
        let t = TopologyBuilder::<i32>::new().build();
        assert!(matches!(t, Err(TopologyError::NoSpout)));
    }

    #[test]
    fn zero_parallelism_rejected() {
        let t = TopologyBuilder::new()
            .spout("src", 0, |_| VecSpout::boxed(vec![1]))
            .build();
        assert!(matches!(t, Err(TopologyError::ZeroParallelism(_))));
    }

    #[test]
    fn panicking_bolt_reported() {
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| VecSpout::boxed(vec![1, 2, 3]))
            .bolt("boom", 1, |_| {
                fn_bolt(|x: i32, _out: &mut Outbox<i32>| {
                    if x == 2 {
                        panic!("injected failure");
                    }
                })
            })
            .subscribe("src", Grouping::Shuffle)
            .done()
            .bolt("down", 1, |_| fn_bolt(|_: i32, _| {}))
            .subscribe("boom", Grouping::Shuffle)
            .done()
            .build()
            .unwrap();
        match run(t) {
            Err(RunError::TaskPanicked(tasks)) => {
                assert!(tasks.iter().any(|t| t.contains("boom")));
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn finish_called_on_shutdown() {
        struct Finisher {
            flag: Arc<Mutex<bool>>,
        }
        impl Bolt<i32> for Finisher {
            fn execute(&mut self, _m: i32, _o: &mut Outbox<i32>) {}
            fn finish(&mut self, _o: &mut Outbox<i32>) {
                *self.flag.lock() = true;
            }
        }
        let flag = Arc::new(Mutex::new(false));
        let f2 = Arc::clone(&flag);
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| VecSpout::boxed(vec![1]))
            .bolt("fin", 1, move |_| {
                Box::new(Finisher {
                    flag: Arc::clone(&f2),
                })
            })
            .subscribe("src", Grouping::Shuffle)
            .done()
            .build()
            .unwrap();
        run(t).unwrap();
        assert!(*flag.lock());
    }

    #[test]
    fn diamond_topology_eos_counts() {
        // src -> (a, b) -> join: join waits for EOS from both branches.
        let sink = CollectorBolt::new();
        let handle = sink.handle();
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| VecSpout::boxed((0..10).collect()))
            .bolt("a", 2, |_| fn_bolt(|x: i32, out| out.emit(x)))
            .subscribe("src", Grouping::Shuffle)
            .done()
            .bolt("b", 2, |_| fn_bolt(|x: i32, out| out.emit(x * 10)))
            .subscribe("src", Grouping::Shuffle)
            .done()
            .bolt("join", 1, move |_| Box::new(sink.clone()))
            .subscribe("a", Grouping::Global)
            .subscribe("b", Grouping::Global)
            .done()
            .build()
            .unwrap();
        run(t).unwrap();
        assert_eq!(handle.len(), 20);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    #[test]
    fn batched_pipeline_matches_unbatched() {
        let mut results = Vec::new();
        for bs in [1usize, 7, 64] {
            let sink = CollectorBolt::new();
            let handle = sink.handle();
            let t = TopologyBuilder::new()
                .batch_size(bs)
                .spout("src", 1, |_| VecSpout::boxed((1..=100).collect()))
                .bolt("add", 4, |_| fn_bolt(|x: i32, out| out.emit(x + 1)))
                .subscribe("src", Grouping::Shuffle)
                .done()
                .bolt("sink", 1, move |_| Box::new(sink.clone()))
                .subscribe("add", Grouping::Global)
                .done()
                .build()
                .unwrap();
            run(t).unwrap();
            let mut v = handle.take();
            v.sort();
            results.push(v);
        }
        assert_eq!(results[0], (2..=101).collect::<Vec<_>>());
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn shuffle_round_robins_whole_batches() {
        let t = TopologyBuilder::new()
            .batch_size(100)
            .spout("src", 1, |_| VecSpout::boxed((0..1200).collect()))
            .bolt("work", 3, |_| fn_bolt(|_x: i32, _out| {}))
            .subscribe("src", Grouping::Shuffle)
            .done()
            .build()
            .unwrap();
        let report = run(t).unwrap();
        // 12 full batches of 100 round-robin across 3 tasks → 4 each.
        assert_eq!(report.received_per_task("work"), vec![400, 400, 400]);
        assert_eq!(report.batches("src"), 12);
        assert!((report.avg_batch_size("src") - 100.0).abs() < 1e-9);
    }

    #[test]
    fn eos_flushes_partial_batches() {
        // batch_size far larger than the stream: everything rides the final
        // EOS flush.
        let sink = CollectorBolt::new();
        let handle = sink.handle();
        let t = TopologyBuilder::new()
            .batch_size(1000)
            .spout("src", 1, |_| VecSpout::boxed((0..10).collect()))
            .bolt("sink", 1, move |_| Box::new(sink.clone()))
            .subscribe("src", Grouping::Global)
            .done()
            .build()
            .unwrap();
        let report = run(t).unwrap();
        let mut v = handle.take();
        v.sort();
        assert_eq!(v, (0..10).collect::<Vec<_>>());
        assert_eq!(report.batches("src"), 1);
        assert!((report.avg_batch_size("src") - 10.0).abs() < 1e-9);
    }

    #[test]
    fn batched_punctuation_windows_exact() {
        struct WindowCounter {
            count: u64,
            out: Arc<Mutex<Vec<u64>>>,
        }
        impl Bolt<i32> for WindowCounter {
            fn execute(&mut self, _msg: i32, _out: &mut Outbox<i32>) {
                self.count += 1;
            }
            fn on_punct(&mut self, _p: u64, _out: &mut Outbox<i32>) {
                self.out.lock().push(self.count);
                self.count = 0;
            }
        }
        for bs in [7usize, 64] {
            let windows = Arc::new(Mutex::new(Vec::new()));
            let w2 = Arc::clone(&windows);
            let t = TopologyBuilder::new()
                .batch_size(bs)
                .spout("src", 1, |_| {
                    Box::new(VecSpout::with_punctuation((0..20).collect(), 5))
                })
                .bolt("mid", 3, |_| fn_bolt(|x: i32, out| out.emit(x)))
                .subscribe("src", Grouping::Shuffle)
                .done()
                .bolt("win", 1, move |_| {
                    Box::new(WindowCounter {
                        count: 0,
                        out: Arc::clone(&w2),
                    })
                })
                .subscribe("mid", Grouping::Global)
                .done()
                .build()
                .unwrap();
            run(t).unwrap();
            let got = windows.lock().clone();
            assert_eq!(got, vec![5, 5, 5, 5], "batch_size={bs}");
        }
    }

    #[test]
    fn fields_grouping_batched_routes_equal_keys_together() {
        let seen = Arc::new(Mutex::new(Vec::<(usize, i32)>::new()));
        let seen2 = Arc::clone(&seen);
        struct Tagger {
            task: usize,
            seen: Arc<Mutex<Vec<(usize, i32)>>>,
        }
        impl Bolt<i32> for Tagger {
            fn prepare(&mut self, info: &TaskInfo) {
                self.task = info.task_index;
            }
            fn execute(&mut self, msg: i32, _out: &mut Outbox<i32>) {
                self.seen.lock().push((self.task, msg));
            }
        }
        let t = TopologyBuilder::new()
            .batch_size(4)
            .spout("src", 1, |_| {
                VecSpout::boxed((0..30).map(|i| i % 5).collect())
            })
            .bolt("part", 3, move |_| {
                Box::new(Tagger {
                    task: usize::MAX,
                    seen: Arc::clone(&seen2),
                })
            })
            .subscribe("src", Grouping::Fields(Arc::new(|x: &i32| *x as u64)))
            .done()
            .build()
            .unwrap();
        run(t).unwrap();
        let log = seen.lock();
        assert_eq!(log.len(), 30);
        for key in 0..5 {
            let tasks: std::collections::HashSet<usize> = log
                .iter()
                .filter(|(_, k)| *k == key)
                .map(|(t, _)| *t)
                .collect();
            assert_eq!(tasks.len(), 1, "key {key} hit tasks {tasks:?}");
        }
    }

    #[test]
    fn direct_grouping_batched() {
        let t = TopologyBuilder::new()
            .batch_size(4)
            .spout("src", 1, |_| VecSpout::boxed((0..9).collect()))
            .bolt("router", 1, |_| {
                fn_bolt(|x: i32, out: &mut Outbox<i32>| out.emit_direct((x % 3) as usize, x))
            })
            .subscribe("src", Grouping::Shuffle)
            .done()
            .bolt("worker", 3, |_| fn_bolt(|_x: i32, _out| {}))
            .subscribe("router", Grouping::Direct)
            .done()
            .build()
            .unwrap();
        let report = run(t).unwrap();
        assert_eq!(report.received_per_task("worker"), vec![3, 3, 3]);
    }

    #[test]
    fn explicit_flush_ships_partial_batch() {
        // A bolt that flushes after every emit produces one batch per message
        // even with a large batch_size configured.
        let t = TopologyBuilder::new()
            .batch_size(64)
            .spout("src", 1, |_| VecSpout::boxed((0..10).collect()))
            .bolt("eager", 1, |_| {
                fn_bolt(|x: i32, out: &mut Outbox<i32>| {
                    out.emit(x);
                    out.flush();
                })
            })
            .subscribe("src", Grouping::Global)
            .done()
            .bolt("sink", 1, |_| fn_bolt(|_x: i32, _out| {}))
            .subscribe("eager", Grouping::Global)
            .done()
            .build()
            .unwrap();
        let report = run(t).unwrap();
        assert_eq!(report.received("sink"), 10);
        assert_eq!(report.batches("eager"), 10);
        assert!((report.avg_batch_size("eager") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_grouping_batched_replicates() {
        let t = TopologyBuilder::new()
            .batch_size(4)
            .spout("src", 1, |_| VecSpout::boxed(vec![7; 10]))
            .bolt("bcast", 3, |_| fn_bolt(|_x: i32, _out| {}))
            .subscribe("src", Grouping::All)
            .done()
            .build()
            .unwrap();
        let report = run(t).unwrap();
        assert_eq!(report.received_per_task("bcast"), vec![10, 10, 10]);
    }
}

#[cfg(test)]
mod shed_tests {
    use super::*;

    fn shed_sums(report: &RunReport, component: &str) -> (u64, u64, u64) {
        let sum = |name: &str| -> u64 {
            report
                .tasks
                .iter()
                .filter(|t| t.component == component)
                .map(|t| t.counter(name))
                .sum()
        };
        (sum("shed_offered"), sum("shed_dropped"), sum("shed_passed"))
    }

    #[test]
    fn shed_counters_conserved_under_overload() {
        // A blasting spout against a bolt that sleeps per message: the
        // queue stays deep, so a zero budget must shed. Exactly how many
        // drop is timing-dependent; conservation is not.
        let t = TopologyBuilder::new()
            .channel_capacity(8)
            .spout("src", 1, |_| {
                Box::new(VecSpout::with_punctuation((0..400).collect(), 100))
            })
            .bolt("slow", 1, |_| {
                fn_bolt(|_x: i32, _out: &mut Outbox<i32>| {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                })
            })
            .subscribe("src", Grouping::Shuffle)
            .done()
            .shed("slow", 0, |_m: &i32| true)
            .build()
            .unwrap();
        let report = run(t).unwrap();
        let (offered, dropped, passed) = shed_sums(&report, "slow");
        assert_eq!(offered, 400, "every data message is accounted");
        assert_eq!(offered, dropped + passed, "conservation");
        assert!(dropped > 0, "zero budget under overload must shed");
        assert_eq!(
            report.received("slow"),
            passed,
            "bolt saw only passed messages"
        );
    }

    #[test]
    fn shed_with_slack_budget_drops_nothing() {
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| {
                Box::new(VecSpout::with_punctuation((0..200).collect(), 50))
            })
            .bolt("work", 1, |_| fn_bolt(|_x: i32, _out: &mut Outbox<i32>| {}))
            .subscribe("src", Grouping::Shuffle)
            .done()
            .shed("work", usize::MAX, |_m: &i32| true)
            .build()
            .unwrap();
        let report = run(t).unwrap();
        let (offered, dropped, passed) = shed_sums(&report, "work");
        assert_eq!(offered, 200);
        assert_eq!(dropped, 0);
        assert_eq!(passed, 200);
    }

    #[test]
    fn shed_respects_predicate() {
        // Only even messages are sheddable; odd ones always pass even with
        // a zero budget and a saturated queue.
        let seen = Arc::new(Mutex::new(Vec::<i32>::new()));
        let s2 = Arc::clone(&seen);
        let t = TopologyBuilder::new()
            .channel_capacity(4)
            .spout("src", 1, |_| VecSpout::boxed((0..300).collect()))
            .bolt("slow", 1, move |_| {
                let s = Arc::clone(&s2);
                fn_bolt(move |x: i32, _out: &mut Outbox<i32>| {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                    s.lock().push(x);
                })
            })
            .subscribe("src", Grouping::Shuffle)
            .done()
            .shed("slow", 0, |m: &i32| m % 2 == 0)
            .build()
            .unwrap();
        run(t).unwrap();
        let got = seen.lock();
        let odd = (0..300).filter(|x| x % 2 == 1).count();
        assert!(
            got.iter().filter(|x| *x % 2 == 1).count() == odd,
            "no odd message may be shed"
        );
    }

    #[test]
    fn shed_on_pooled_scheduler_conserves() {
        let t = TopologyBuilder::new()
            .scheduler(SchedulerMode::Pooled {
                workers: 2,
                pin_cores: false,
            })
            .spout("src", 1, |_| {
                Box::new(VecSpout::with_punctuation((0..400).collect(), 100))
            })
            .bolt("slow", 1, |_| {
                fn_bolt(|_x: i32, _out: &mut Outbox<i32>| {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                })
            })
            .subscribe("src", Grouping::Shuffle)
            .done()
            .shed("slow", 1, |_m: &i32| true)
            .build()
            .unwrap();
        let report = run(t).unwrap();
        let (offered, dropped, passed) = shed_sums(&report, "slow");
        assert_eq!(offered, 400);
        assert_eq!(offered, dropped + passed);
    }

    #[test]
    fn shed_target_must_be_a_bolt() {
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| VecSpout::boxed(vec![1]))
            .bolt("work", 1, |_| fn_bolt(|_: i32, _| {}))
            .subscribe("src", Grouping::Shuffle)
            .done()
            .shed("src", 0, |_m: &i32| true)
            .build();
        assert!(matches!(t, Err(TopologyError::ShedTarget(_))));
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| VecSpout::boxed(vec![1]))
            .shed("ghost", 0, |_m: &i32| true)
            .build();
        assert!(matches!(t, Err(TopologyError::ShedTarget(_))));
    }
}

#[cfg(test)]
mod paced_tests {
    use super::*;

    #[test]
    fn paced_spout_respects_schedule_and_punctuates() {
        // 40 items, 0.5 ms apart: the run takes at least ~20 ms and window
        // contents match the unpaced equivalent.
        let sink = CollectorBolt::new();
        let handle = sink.handle();
        let anchor = Arc::new(std::sync::OnceLock::new());
        let a2 = Arc::clone(&anchor);
        let schedule: Vec<u64> = (0..40u64).map(|i| i * 500_000).collect();
        let t = TopologyBuilder::new()
            .spout("src", 1, move |_| {
                Box::new(PacedSpout::new(
                    (0..40).collect(),
                    schedule.clone(),
                    10,
                    Arc::clone(&a2),
                ))
            })
            .bolt("sink", 1, move |_| Box::new(sink.clone()))
            .subscribe("src", Grouping::Global)
            .done()
            .build()
            .unwrap();
        let t0 = std::time::Instant::now();
        let report = run(t).unwrap();
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(19),
            "pacing must stretch the run"
        );
        let mut got = handle.take();
        got.sort();
        assert_eq!(got, (0..40).collect::<Vec<_>>());
        assert_eq!(
            report
                .tasks
                .iter()
                .find(|t| t.component == "src")
                .unwrap()
                .counter("puncts"),
            4
        );
        assert!(anchor.get().is_some(), "anchor set at first emission");
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_export_lists_components_and_edges() {
        let t = TopologyBuilder::new()
            .spout("src", 2, |_| VecSpout::boxed(vec![1]))
            .bolt("work", 3, |_| fn_bolt(|_: i32, _| {}))
            .subscribe("src", Grouping::Shuffle)
            .subscribe_feedback("sink", Grouping::Global)
            .done()
            .bolt("sink", 1, |_| fn_bolt(|_: i32, _| {}))
            .subscribe("work", Grouping::All)
            .done()
            .build()
            .unwrap();
        let dot = t.to_dot();
        assert!(dot.contains("digraph topology"));
        assert!(dot.contains("\"src\" [shape=doublecircle, label=\"src (x2)\"]"));
        assert!(dot.contains("\"work\" [shape=box"));
        assert!(dot.contains("\"src\" -> \"work\" [label=\"Shuffle\"]"));
        assert!(dot.contains("\"work\" -> \"sink\" [label=\"All\"]"));
        assert!(dot.contains("\"sink\" -> \"work\" [label=\"Global\", style=dashed]"));
    }
}

#[cfg(test)]
mod busy_tests {
    use super::*;

    #[test]
    fn busy_time_accumulates_for_working_bolts() {
        let t = TopologyBuilder::new()
            .spout("src", 1, |_| VecSpout::boxed((0..200u64).collect()))
            .bolt("worker", 1, |_| {
                fn_bolt(|x: u64, _out: &mut Outbox<u64>| {
                    // A measurable amount of work per message.
                    let mut acc = x;
                    for i in 0..20_000u64 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                    }
                    std::hint::black_box(acc);
                })
            })
            .subscribe("src", Grouping::Shuffle)
            .done()
            .build()
            .unwrap();
        let report = run(t).unwrap();
        let legacy = report.legacy_tasks();
        let worker = legacy.iter().find(|t| t.component == "worker").unwrap();
        assert!(worker.busy > std::time::Duration::ZERO);
    }
}
