//! Deterministic fault injection and the recovery policy that counters it.
//!
//! A [`FaultPlan`] is attached to a topology via
//! [`TopologyBuilder::fault_plan`](crate::TopologyBuilder::fault_plan) and
//! fires faults at *logical coordinates* of a task's input stream — never
//! from a clock. A coordinate is `(component, task, window, tuple)` where
//! `window` counts punctuation alignments the task has completed and
//! `tuple` counts data tuples of that window. A data envelope is
//! attributed to the window it will be *delivered* in — the alignment
//! count plus the unaligned punctuations of the envelope's own upstream —
//! so a fast edge running ahead of a slow one cannot shift tuples across
//! windows. With a single upstream the mapping from coordinate to document
//! is exact; with several upstreams the arrival interleaving picks which
//! document of the window the coordinate lands on, but whether a
//! coordinate *fires* depends only on the per-window tuple totals (same
//! plan, same logical position — no wall clock, no randomness at runtime).
//! [`FaultPlan::crash_somewhere`] derives a coordinate from a seed so
//! property tests can sweep crash sites.
//!
//! [`RecoveryPolicy`] configures the supervisor in the executor: bounded
//! retry-with-backoff restarts from the last window-aligned
//! [`Bolt::snapshot`](crate::Bolt::snapshot), receive/send timeouts with
//! exponential backoff, and the degraded mode that fences a task whose
//! retries are exhausted and reroutes fields groupings over the survivors.

use std::cell::Cell;
use std::panic;
use std::sync::Once;
use std::time::Duration;

/// What a fault does when its trigger coordinate is reached.
///
/// Crash faults apply to any envelope; drop/delay/stall only ever fire on
/// data envelopes — control tokens (punctuation, EOS) are never injected
/// against, otherwise alignment itself would wedge and no recovery
/// mechanism could be exercised deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the task (caught by the supervisor when retries are
    /// configured; propagates like an organic bolt panic otherwise).
    Crash,
    /// Silently discard the triggering data envelope (simulates lossy
    /// transport; intentionally *violates* exactness — see DESIGN.md §4d).
    Drop,
    /// Hold the triggering data envelope back for the given number of
    /// subsequently received envelopes, then process it late. Held
    /// envelopes are always released before the next control token so
    /// window boundaries stay exact.
    Delay(u64),
    /// Busy-spin for the given number of iterations before processing the
    /// envelope — a deterministic straggler, no clock involved.
    Stall(u64),
}

/// A single armed fault at a task-local stream coordinate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Component name the fault targets.
    pub component: String,
    /// Task index within the component.
    pub task: usize,
    /// Window coordinate: number of completed punctuation alignments.
    pub window: u64,
    /// Tuple coordinate: data tuples of the window, counted in receive
    /// order. The fault fires on the envelope *containing* this tuple (a
    /// micro-batch fires as a unit).
    pub tuple: u64,
    /// What happens at the coordinate.
    pub kind: FaultKind,
    /// `false` fires once ever (surviving restarts and replay); `true`
    /// re-fires every time the coordinate is reached — a repeating crash
    /// re-kills the task during replay and exhausts its retries.
    pub repeat: bool,
}

/// A deterministic schedule of faults for one topology run.
///
/// ```
/// use ssj_runtime::{FaultPlan, FaultKind};
/// let plan = FaultPlan::new()
///     .crash("joiner", 1, 0, 7)
///     .fault("merger", 0, 1, 3, FaultKind::Stall(10_000), false);
/// assert_eq!(plan.specs().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm an arbitrary fault at `(component, task, window, tuple)`.
    pub fn fault(
        mut self,
        component: &str,
        task: usize,
        window: u64,
        tuple: u64,
        kind: FaultKind,
        repeat: bool,
    ) -> Self {
        self.specs.push(FaultSpec {
            component: component.to_string(),
            task,
            window,
            tuple,
            kind,
            repeat,
        });
        self
    }

    /// Arm a one-shot crash (fires once, never again — including during
    /// replay after the restart it causes).
    pub fn crash(self, component: &str, task: usize, window: u64, tuple: u64) -> Self {
        self.fault(component, task, window, tuple, FaultKind::Crash, false)
    }

    /// Arm a crash that re-fires every time its coordinate is reached;
    /// replay re-hits the coordinate, so this exhausts the retry budget.
    pub fn crash_repeating(self, component: &str, task: usize, window: u64, tuple: u64) -> Self {
        self.fault(component, task, window, tuple, FaultKind::Crash, true)
    }

    /// Arm a one-shot envelope drop at the coordinate.
    pub fn drop_envelope(self, component: &str, task: usize, window: u64, tuple: u64) -> Self {
        self.fault(component, task, window, tuple, FaultKind::Drop, false)
    }

    /// Arm a one-shot delay: the envelope at the coordinate is processed
    /// `hold` received-envelopes later (but before the next control token).
    pub fn delay(self, component: &str, task: usize, window: u64, tuple: u64, hold: u64) -> Self {
        self.fault(
            component,
            task,
            window,
            tuple,
            FaultKind::Delay(hold),
            false,
        )
    }

    /// Arm a one-shot deterministic stall of `spins` busy-loop iterations.
    pub fn stall(self, component: &str, task: usize, window: u64, tuple: u64, spins: u64) -> Self {
        self.fault(
            component,
            task,
            window,
            tuple,
            FaultKind::Stall(spins),
            false,
        )
    }

    /// Arm a one-shot crash at a pseudorandom coordinate derived from
    /// `seed` (splitmix64): task in `0..parallelism`, window in
    /// `0..windows`, tuple in `0..tuples_per_window`. Same seed, same
    /// coordinate — handy for seeded chaos sweeps.
    pub fn crash_somewhere(
        self,
        component: &str,
        parallelism: usize,
        windows: u64,
        tuples_per_window: u64,
        seed: u64,
    ) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let task = (next() % parallelism.max(1) as u64) as usize;
        let window = next() % windows.max(1);
        let tuple = next() % tuples_per_window.max(1);
        self.crash(component, task, window, tuple)
    }

    /// All armed fault specs, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Extract the faults aimed at one task, as runtime-armed state.
    pub(crate) fn for_task(&self, component: &str, task: usize) -> TaskFaults {
        TaskFaults {
            armed: self
                .specs
                .iter()
                .filter(|s| s.component == component && s.task == task)
                .map(|s| ArmedFault {
                    window: s.window,
                    tuple: s.tuple,
                    kind: s.kind,
                    repeat: s.repeat,
                    fired: false,
                })
                .collect(),
        }
    }
}

/// How the executor supervises tasks and reacts to failures.
///
/// The default policy is inert: no retries, no degraded mode, no timeouts
/// — a panicking bolt kills the run exactly as it did before supervision
/// existed, and the hot path pays nothing.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Restarts granted per task before the failure is terminal.
    pub retries: u32,
    /// Base backoff slept before restart attempt `n` (scaled `2^(n-1)`,
    /// capped at 64x).
    pub backoff: Duration,
    /// After retry exhaustion, fence the task and route around it instead
    /// of killing the topology.
    pub degraded: bool,
    /// Receive-side timeout: a supervised task blocked on its inputs wakes
    /// up, counts `faults_recv_timeouts`, backs off exponentially and
    /// retries rather than blocking forever.
    pub recv_timeout: Option<Duration>,
    /// Send-side timeout: a full downstream channel is retried with
    /// exponential backoff, counting `faults_send_timeouts` per expiry.
    pub send_timeout: Option<Duration>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            retries: 0,
            backoff: Duration::from_millis(20),
            degraded: false,
            recv_timeout: None,
            send_timeout: None,
        }
    }
}

impl RecoveryPolicy {
    /// The inert default policy (no supervision).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the per-task restart budget.
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Set the base restart backoff.
    pub fn backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Enable or disable degraded (fence-and-reroute) mode.
    pub fn degraded(mut self, degraded: bool) -> Self {
        self.degraded = degraded;
        self
    }

    /// Set the receive timeout for supervised tasks.
    pub fn recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = Some(timeout);
        self
    }

    /// Set the send timeout for output channels.
    pub fn send_timeout(mut self, timeout: Duration) -> Self {
        self.send_timeout = Some(timeout);
        self
    }

    /// True when any supervision machinery (retry, degraded routing, or
    /// timeouts) is switched on.
    pub(crate) fn armed(&self) -> bool {
        self.retries > 0 || self.degraded || self.recv_timeout.is_some()
    }

    /// Backoff before restart attempt `attempt` (1-based), exponentially
    /// scaled and capped at 64x the base.
    pub(crate) fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(6);
        self.backoff.saturating_mul(factor)
    }
}

/// What the injection layer tells the supervisor to do with an envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultAction {
    /// Panic now (unwinds with a [`FaultPanic`] payload).
    Crash,
    /// Discard the envelope.
    Drop,
    /// Hold the envelope for this many received envelopes.
    Delay(u64),
    /// Busy-spin this many iterations, then process normally.
    Stall(u64),
}

#[derive(Debug, Clone)]
struct ArmedFault {
    window: u64,
    tuple: u64,
    kind: FaultKind,
    repeat: bool,
    fired: bool,
}

/// Per-task armed fault state plus the logical-coordinate clock.
#[derive(Debug, Clone, Default)]
pub(crate) struct TaskFaults {
    armed: Vec<ArmedFault>,
}

impl TaskFaults {
    pub(crate) fn is_empty(&self) -> bool {
        self.armed.is_empty()
    }

    /// Consult the plan for a data envelope spanning tuple coordinates
    /// `[first_tuple, first_tuple + count)` of window `window`. At most one
    /// fault fires per envelope; crashes win over the rest.
    pub(crate) fn on_data(
        &mut self,
        window: u64,
        first_tuple: u64,
        count: u64,
    ) -> Option<FaultAction> {
        let mut action = None;
        for f in &mut self.armed {
            if f.fired && !f.repeat {
                continue;
            }
            if f.window == window && f.tuple >= first_tuple && f.tuple < first_tuple + count {
                f.fired = true;
                let a = match f.kind {
                    FaultKind::Crash => FaultAction::Crash,
                    FaultKind::Drop => FaultAction::Drop,
                    FaultKind::Delay(n) => FaultAction::Delay(n),
                    FaultKind::Stall(n) => FaultAction::Stall(n),
                };
                if a == FaultAction::Crash {
                    return Some(a);
                }
                action.get_or_insert(a);
            }
        }
        action
    }
}

/// Panic payload used for injected crashes, so supervisors and tests can
/// tell an injected fault from an organic bolt bug.
#[derive(Debug, Clone)]
pub struct FaultPanic {
    /// Component the fault was armed against.
    pub component: String,
    /// Task index within the component.
    pub task: usize,
    /// Window coordinate the crash fired at.
    pub window: u64,
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

/// Run `f` with the default panic message suppressed on this thread —
/// used around `catch_unwind` when the supervisor *will* handle the
/// unwind, so injected crashes don't spray backtraces over test output.
/// Unhandled panics (no retries left, no degraded mode) are not wrapped
/// and print exactly as before.
pub(crate) fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            QUIET_PANICS.with(|q| q.set(false));
        }
    }
    QUIET_PANICS.with(|q| q.set(true));
    let _reset = Reset;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_fault_fires_once() {
        let plan = FaultPlan::new().crash("b", 0, 1, 3);
        let mut tf = plan.for_task("b", 0);
        assert_eq!(tf.on_data(0, 3, 1), None);
        assert_eq!(tf.on_data(1, 0, 3), None);
        assert_eq!(tf.on_data(1, 3, 1), Some(FaultAction::Crash));
        assert_eq!(tf.on_data(1, 3, 1), None);
    }

    #[test]
    fn batch_envelope_fires_when_coordinate_inside_range() {
        let plan = FaultPlan::new().drop_envelope("b", 2, 0, 10);
        let mut tf = plan.for_task("b", 2);
        assert_eq!(tf.on_data(0, 0, 10), None);
        assert_eq!(tf.on_data(0, 10, 64), Some(FaultAction::Drop));
    }

    #[test]
    fn repeating_fault_refires() {
        let plan = FaultPlan::new().crash_repeating("b", 0, 0, 0);
        let mut tf = plan.for_task("b", 0);
        assert_eq!(tf.on_data(0, 0, 1), Some(FaultAction::Crash));
        assert_eq!(tf.on_data(0, 0, 1), Some(FaultAction::Crash));
    }

    #[test]
    fn faults_filtered_per_task() {
        let plan = FaultPlan::new().crash("b", 1, 0, 0).stall("c", 0, 0, 0, 5);
        assert!(plan.for_task("b", 0).is_empty());
        assert!(!plan.for_task("b", 1).is_empty());
        assert!(!plan.for_task("c", 0).is_empty());
        assert!(plan.for_task("other", 0).is_empty());
    }

    #[test]
    fn crash_somewhere_is_seed_deterministic() {
        let a = FaultPlan::new().crash_somewhere("j", 4, 3, 100, 42);
        let b = FaultPlan::new().crash_somewhere("j", 4, 3, 100, 42);
        let c = FaultPlan::new().crash_somewhere("j", 4, 3, 100, 43);
        assert_eq!(a.specs()[0].task, b.specs()[0].task);
        assert_eq!(a.specs()[0].window, b.specs()[0].window);
        assert_eq!(a.specs()[0].tuple, b.specs()[0].tuple);
        let same = a.specs()[0].task == c.specs()[0].task
            && a.specs()[0].window == c.specs()[0].window
            && a.specs()[0].tuple == c.specs()[0].tuple;
        assert!(!same, "different seeds should move the crash site");
    }

    #[test]
    fn backoff_scales_exponentially_with_cap() {
        let p = RecoveryPolicy::new().backoff(Duration::from_millis(10));
        assert_eq!(p.backoff_for(1), Duration::from_millis(10));
        assert_eq!(p.backoff_for(2), Duration::from_millis(20));
        assert_eq!(p.backoff_for(4), Duration::from_millis(80));
        assert_eq!(p.backoff_for(40), Duration::from_millis(640));
    }

    #[test]
    fn default_policy_is_inert() {
        let p = RecoveryPolicy::default();
        assert!(!p.armed());
        assert!(RecoveryPolicy::new().retries(1).armed());
        assert!(RecoveryPolicy::new().degraded(true).armed());
    }
}
