//! Topology description: components, parallelism, and stream groupings.
//!
//! Mirrors the Storm concepts of §III-B: a topology is a graph of **spouts**
//! (stream sources) and **bolts** (processors), each instantiated as
//! `parallelism` independent *tasks*. Bolts subscribe to the output stream
//! of other components under one of the groupings Storm offers:
//!
//! * **shuffle** — round-robin across the subscriber's tasks;
//! * **fields** — hash of a key extracted from the message;
//! * **all** — replicate to every task;
//! * **direct** — the *producer* names the receiving task;
//! * **global** — everything to task 0.
//!
//! Subscriptions may be marked **feedback** for control loops (e.g. Merger →
//! Assigner → Merger in Fig. 2): feedback edges deliver messages but do not
//! participate in end-of-stream accounting or punctuation alignment, and the
//! forward-edge graph must be acyclic.

use crate::fault::{FaultPlan, RecoveryPolicy};
use crate::{Bolt, Spout};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// How a subscription distributes messages over the subscriber's tasks.
pub enum Grouping<M> {
    /// Round-robin (Storm randomizes; round-robin gives the same balance
    /// deterministically).
    Shuffle,
    /// Hash the extracted key; equal keys reach the same task.
    Fields(Arc<dyn Fn(&M) -> u64 + Send + Sync>),
    /// Replicate to all tasks.
    All,
    /// Producer picks the task via `Outbox::emit_direct`.
    Direct,
    /// Everything to task 0.
    Global,
}

impl<M> Clone for Grouping<M> {
    fn clone(&self) -> Self {
        match self {
            Grouping::Shuffle => Grouping::Shuffle,
            Grouping::Fields(f) => Grouping::Fields(Arc::clone(f)),
            Grouping::All => Grouping::All,
            Grouping::Direct => Grouping::Direct,
            Grouping::Global => Grouping::Global,
        }
    }
}

impl<M> fmt::Debug for Grouping<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Grouping::Shuffle => "Shuffle",
            Grouping::Fields(_) => "Fields",
            Grouping::All => "All",
            Grouping::Direct => "Direct",
            Grouping::Global => "Global",
        })
    }
}

/// A subscription of one component to another's output stream.
#[derive(Clone)]
pub(crate) struct Subscription<M> {
    pub source: String,
    pub grouping: Grouping<M>,
    pub feedback: bool,
}

/// Predicate selecting the messages a load shedder may drop (see
/// [`TopologyBuilder::shed`]).
pub type ShedPredicate<M> = Arc<dyn Fn(&M) -> bool + Send + Sync>;

/// A load-shedding policy installed on one component's forward input.
pub(crate) struct ShedSpec<M> {
    pub component: String,
    pub budget: usize,
    pub predicate: ShedPredicate<M>,
}

impl<M> Clone for ShedSpec<M> {
    fn clone(&self) -> Self {
        ShedSpec {
            component: self.component.clone(),
            budget: self.budget,
            predicate: Arc::clone(&self.predicate),
        }
    }
}

/// Factory producing one spout instance per task.
pub type SpoutFactory<M> = Box<dyn Fn(usize) -> Box<dyn Spout<M>> + Send>;
/// Factory producing one bolt instance per task. Shared (`Arc`) so the
/// supervisor can rebuild a crashed task's bolt from the same factory when
/// restarting it from a snapshot.
pub type BoltFactory<M> = Arc<dyn Fn(usize) -> Box<dyn Bolt<M>> + Send + Sync>;

pub(crate) enum ComponentKind<M> {
    Spout(SpoutFactory<M>),
    Bolt(BoltFactory<M>),
}

pub(crate) struct Component<M> {
    pub name: String,
    pub parallelism: usize,
    pub kind: ComponentKind<M>,
    pub subscriptions: Vec<Subscription<M>>,
}

/// How the executor maps tasks onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// One OS thread per task (the original executor). The library default:
    /// existing embedders see byte-identical scheduling. Deprecated for
    /// large topologies — `m ≫ cores` joiners degenerate into
    /// context-switch churn; prefer [`SchedulerMode::Pooled`].
    #[default]
    ThreadPerTask,
    /// A fixed pool of workers cooperatively schedules bolt tasks over
    /// per-worker work-stealing deques (DESIGN.md §4e). Spouts (and every
    /// bolt when the recovery policy sets a receive timeout) keep dedicated
    /// threads; all other bolts become pooled tasks, so hundreds of tasks
    /// run without oversubscription.
    Pooled {
        /// Worker threads; 0 = auto (the machine's available parallelism).
        workers: usize,
        /// Pin worker `i` to core `i % cores` (Linux only; ignored
        /// elsewhere).
        pin_cores: bool,
    },
}

/// Errors detected while building or validating a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A component name was used twice.
    DuplicateComponent(String),
    /// A subscription references an unknown component.
    UnknownSource {
        /// The subscribing component.
        component: String,
        /// The missing source name.
        source: String,
    },
    /// The forward-edge graph contains a cycle (use `feedback` edges).
    ForwardCycle(Vec<String>),
    /// The topology has no spout.
    NoSpout,
    /// Parallelism must be at least 1.
    ZeroParallelism(String),
    /// A component subscribed to itself on a forward edge.
    SelfLoop(String),
    /// A shed policy targets a component that is not a bolt.
    ShedTarget(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateComponent(c) => write!(f, "duplicate component '{c}'"),
            TopologyError::UnknownSource { component, source } => {
                write!(
                    f,
                    "'{component}' subscribes to unknown component '{source}'"
                )
            }
            TopologyError::ForwardCycle(path) => {
                write!(f, "forward-edge cycle: {}", path.join(" -> "))
            }
            TopologyError::NoSpout => f.write_str("topology has no spout"),
            TopologyError::ZeroParallelism(c) => {
                write!(f, "component '{c}' has parallelism 0")
            }
            TopologyError::SelfLoop(c) => {
                write!(f, "component '{c}' has a forward self-subscription")
            }
            TopologyError::ShedTarget(c) => {
                write!(f, "shed policy targets '{c}', which is not a bolt")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Builder for a [`Topology`].
pub struct TopologyBuilder<M> {
    components: Vec<Component<M>>,
    channel_capacity: usize,
    batch_size: usize,
    metrics: bool,
    trace_capacity: usize,
    fault_plan: FaultPlan,
    recovery: RecoveryPolicy,
    scheduler: SchedulerMode,
    shed: Vec<ShedSpec<M>>,
}

impl<M> Default for TopologyBuilder<M> {
    fn default() -> Self {
        TopologyBuilder {
            components: Vec::new(),
            channel_capacity: 1024,
            batch_size: 1,
            metrics: false,
            trace_capacity: 4096,
            fault_plan: FaultPlan::new(),
            recovery: RecoveryPolicy::default(),
            scheduler: SchedulerMode::default(),
            shed: Vec::new(),
        }
    }
}

impl<M> TopologyBuilder<M> {
    /// Start an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capacity of the bounded forward channels (default 1024). Smaller
    /// capacities throttle fast producers closer to the pace of the
    /// slowest consumer; feedback channels stay unbounded regardless.
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = capacity.max(1);
        self
    }

    /// Messages per transport batch on forward edges (default 1 =
    /// unbatched). Producers buffer up to `n` messages per target and ship
    /// them as one envelope, amortizing the per-message channel cost;
    /// buffers always flush before punctuation and EOS, so window contents
    /// are identical to an unbatched run and latency is bounded by window
    /// boundaries. Feedback edges are never batched.
    pub fn batch_size(mut self, n: usize) -> Self {
        self.batch_size = n.max(1);
        self
    }

    /// Enable full metrics collection (default off): latency histograms on
    /// the task loop, the window-lifecycle trace ring, and one registry
    /// snapshot per aligned punctuation, all surfaced through
    /// [`RunReport`](crate::RunReport). Core throughput counters are
    /// maintained either way; with collection off the hot path carries no
    /// extra cost.
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Capacity of the window-lifecycle trace ring (default 4096 events);
    /// when full, the oldest events are evicted. Only relevant with
    /// [`TopologyBuilder::metrics`] enabled.
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.trace_capacity = events.max(1);
        self
    }

    /// Attach a deterministic [`FaultPlan`]: injected crashes, envelope
    /// drops/delays, and stalls fire at the plan's logical stream
    /// coordinates when the topology runs. An empty plan (the default)
    /// injects nothing and costs nothing.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Set the [`RecoveryPolicy`] the executor supervises bolts with:
    /// retry budget, restart backoff, degraded mode, and channel timeouts.
    /// The default policy is inert — no supervision, panics propagate as
    /// before.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Install a load shedder on `component`'s forward input queue: once
    /// the queue holds more than `budget` envelopes, arriving data
    /// envelopes whose messages *all* satisfy `predicate` are dropped
    /// before the bolt (or its supervisor) sees them. Punctuation, EOS,
    /// feedback traffic, and mixed envelopes always pass, so window
    /// alignment and control loops are untouched; under supervision a shed
    /// envelope never enters the replay log, so a recovered task does not
    /// resurrect dropped work. The task publishes `shed_offered`,
    /// `shed_dropped`, and `shed_passed` counters (offered = dropped +
    /// passed, counting messages, not envelopes). With no shed policies
    /// installed (the default) the receive path is unchanged.
    pub fn shed(
        mut self,
        component: impl Into<String>,
        budget: usize,
        predicate: impl Fn(&M) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.shed.push(ShedSpec {
            component: component.into(),
            budget,
            predicate: Arc::new(predicate),
        });
        self
    }

    /// Choose the [`SchedulerMode`] (default [`SchedulerMode::ThreadPerTask`]
    /// for embedder compatibility). Pooled scheduling changes which forward
    /// channels are bounded — channels fed by bolt producers become
    /// unbounded so cooperative tasks never block a worker on a send —
    /// but window contents, supervision, and fault-injection coordinates
    /// are identical under either mode.
    pub fn scheduler(mut self, mode: SchedulerMode) -> Self {
        self.scheduler = mode;
        self
    }

    /// Add a spout named `name` with `parallelism` tasks.
    pub fn spout(
        mut self,
        name: impl Into<String>,
        parallelism: usize,
        factory: impl Fn(usize) -> Box<dyn Spout<M>> + Send + 'static,
    ) -> Self {
        self.components.push(Component {
            name: name.into(),
            parallelism,
            kind: ComponentKind::Spout(Box::new(factory)),
            subscriptions: Vec::new(),
        });
        self
    }

    /// Add a bolt named `name` with `parallelism` tasks; attach
    /// subscriptions with [`BoltHandle::subscribe`] via the returned handle
    /// pattern: `builder.bolt(..).subscribe(..)`.
    pub fn bolt(
        mut self,
        name: impl Into<String>,
        parallelism: usize,
        factory: impl Fn(usize) -> Box<dyn Bolt<M>> + Send + Sync + 'static,
    ) -> BoltHandle<M> {
        self.components.push(Component {
            name: name.into(),
            parallelism,
            kind: ComponentKind::Bolt(Arc::new(factory)),
            subscriptions: Vec::new(),
        });
        BoltHandle { builder: self }
    }

    /// Validate and freeze the topology.
    pub fn build(self) -> Result<Topology<M>, TopologyError> {
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut has_spout = false;
        for (i, c) in self.components.iter().enumerate() {
            if index.insert(c.name.clone(), i).is_some() {
                return Err(TopologyError::DuplicateComponent(c.name.clone()));
            }
            if c.parallelism == 0 {
                return Err(TopologyError::ZeroParallelism(c.name.clone()));
            }
            if matches!(c.kind, ComponentKind::Spout(_)) {
                has_spout = true;
            }
        }
        if !has_spout {
            return Err(TopologyError::NoSpout);
        }
        for spec in &self.shed {
            match index.get(&spec.component) {
                Some(&i) if matches!(self.components[i].kind, ComponentKind::Bolt(_)) => {}
                _ => return Err(TopologyError::ShedTarget(spec.component.clone())),
            }
        }
        for c in &self.components {
            for s in &c.subscriptions {
                if !index.contains_key(&s.source) {
                    return Err(TopologyError::UnknownSource {
                        component: c.name.clone(),
                        source: s.source.clone(),
                    });
                }
                if !s.feedback && s.source == c.name {
                    return Err(TopologyError::SelfLoop(c.name.clone()));
                }
            }
        }
        // Cycle detection over forward edges (source → subscriber).
        let n = self.components.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ci, c) in self.components.iter().enumerate() {
            for s in &c.subscriptions {
                if !s.feedback {
                    adj[index[&s.source]].push(ci);
                }
            }
        }
        let mut state = vec![0u8; n]; // 0 unseen, 1 in-stack, 2 done
        let mut stack = Vec::new();
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            if let Some(cycle) = dfs_cycle(start, &adj, &mut state, &mut stack) {
                let names = cycle
                    .into_iter()
                    .map(|i| self.components[i].name.clone())
                    .collect();
                return Err(TopologyError::ForwardCycle(names));
            }
        }
        Ok(Topology {
            components: self.components,
            index,
            channel_capacity: self.channel_capacity,
            batch_size: self.batch_size,
            metrics: self.metrics,
            trace_capacity: self.trace_capacity,
            fault_plan: self.fault_plan,
            recovery: self.recovery,
            scheduler: self.scheduler,
            shed: self.shed,
        })
    }
}

fn dfs_cycle(
    node: usize,
    adj: &[Vec<usize>],
    state: &mut [u8],
    stack: &mut Vec<usize>,
) -> Option<Vec<usize>> {
    state[node] = 1;
    stack.push(node);
    for &next in &adj[node] {
        match state[next] {
            0 => {
                if let Some(c) = dfs_cycle(next, adj, state, stack) {
                    return Some(c);
                }
            }
            1 => {
                let pos = stack.iter().position(|&x| x == next).unwrap_or(0);
                let mut cycle: Vec<usize> = stack[pos..].to_vec();
                cycle.push(next);
                return Some(cycle);
            }
            _ => {}
        }
    }
    stack.pop();
    state[node] = 2;
    None
}

/// Fluent handle returned by [`TopologyBuilder::bolt`] for attaching the
/// new bolt's subscriptions.
pub struct BoltHandle<M> {
    builder: TopologyBuilder<M>,
}

impl<M> BoltHandle<M> {
    /// Subscribe the bolt to `source`'s stream under `grouping`.
    pub fn subscribe(mut self, source: impl Into<String>, grouping: Grouping<M>) -> Self {
        self.builder
            .components
            .last_mut()
            .expect("bolt just added")
            .subscriptions
            .push(Subscription {
                source: source.into(),
                grouping,
                feedback: false,
            });
        self
    }

    /// Subscribe via a feedback (control-loop) edge.
    pub fn subscribe_feedback(mut self, source: impl Into<String>, grouping: Grouping<M>) -> Self {
        self.builder
            .components
            .last_mut()
            .expect("bolt just added")
            .subscriptions
            .push(Subscription {
                source: source.into(),
                grouping,
                feedback: true,
            });
        self
    }

    /// Return to the builder.
    pub fn done(self) -> TopologyBuilder<M> {
        self.builder
    }
}

/// A validated topology, ready to run.
pub struct Topology<M> {
    pub(crate) components: Vec<Component<M>>,
    pub(crate) index: HashMap<String, usize>,
    pub(crate) channel_capacity: usize,
    pub(crate) batch_size: usize,
    pub(crate) metrics: bool,
    pub(crate) trace_capacity: usize,
    pub(crate) fault_plan: FaultPlan,
    pub(crate) recovery: RecoveryPolicy,
    pub(crate) scheduler: SchedulerMode,
    pub(crate) shed: Vec<ShedSpec<M>>,
}

impl<M> Topology<M> {
    /// Component names in declaration order.
    pub fn component_names(&self) -> Vec<&str> {
        self.components.iter().map(|c| c.name.as_str()).collect()
    }

    /// Parallelism of a component, if it exists.
    pub fn parallelism(&self, name: &str) -> Option<usize> {
        self.index
            .get(name)
            .map(|&i| self.components[i].parallelism)
    }

    /// Render the topology as Graphviz DOT: spouts as double circles, bolts
    /// as boxes, one edge per subscription labelled with its grouping,
    /// feedback edges dashed. Paste into `dot -Tsvg` to visualize.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph topology {\n  rankdir=LR;\n");
        for c in &self.components {
            let shape = match c.kind {
                ComponentKind::Spout(_) => "doublecircle",
                ComponentKind::Bolt(_) => "box",
            };
            let _ = writeln!(
                out,
                "  \"{}\" [shape={shape}, label=\"{} (x{})\"];",
                c.name, c.name, c.parallelism
            );
        }
        for c in &self.components {
            for s in &c.subscriptions {
                let style = if s.feedback { ", style=dashed" } else { "" };
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\" [label=\"{:?}\"{style}];",
                    s.source, c.name, s.grouping
                );
            }
        }
        out.push_str("}\n");
        out
    }
}
