//! Binary wire format for envelopes crossing process boundaries
//! (DESIGN.md §4f).
//!
//! A frame is one length-prefixed unit on a transport link:
//!
//! ```text
//! [u32 LE body length][u8 kind][varint target][varint from][u8 flags] …
//! ```
//!
//! * `kind` selects the payload: `Data`, `Batch`, `Punct`, `Eos`, the
//!   handshake `Hello`, or the edge-close token `Close` (the wire analogue
//!   of a producer dropping its channel senders).
//! * `target` / `from` are *global task ids* — the same numbering every
//!   process derives from the shared topology, so no per-link id mapping is
//!   needed.
//! * `flags` bit 0 marks a feedback-edge frame (routed into the receiver's
//!   unbounded feedback channel, exactly like the in-process split).
//! * `Data`/`Batch` payloads carry the sender's **dictionary epoch** before
//!   the message bytes: message encoding is delegated to a [`WireCodec`],
//!   which serializes interned symbols against an epoch-versioned dictionary
//!   snapshot agreed at handshake time. A receiver whose codec disagrees
//!   rejects the frame with [`WireError::EpochMismatch`] instead of decoding
//!   garbage ids.
//!
//! One [`Envelope::Batch`](crate) micro-batch becomes exactly one `Batch`
//! frame, so the PR 2 batch boundaries — and therefore window contents —
//! are preserved bit-for-bit across the wire.
//!
//! Integers use LEB128 varints (signed values zigzag-encoded); all decoding
//! goes through a bounds-checked [`Cursor`] that borrows the frame buffer,
//! so payload bytes (inline strings) are sliced, not copied, until the
//! message type itself needs ownership.

use std::fmt;
use std::io::Read;

/// Wire protocol version; bumped on any incompatible layout change.
pub const WIRE_VERSION: u16 = 1;

/// Handshake magic: `"SSJW"`.
pub const WIRE_MAGIC: u32 = u32::from_le_bytes(*b"SSJW");

/// Upper bound on one frame body; a length prefix beyond it is treated as
/// stream corruption rather than an allocation request.
pub const MAX_FRAME_LEN: usize = 256 << 20;

const KIND_DATA: u8 = 1;
const KIND_BATCH: u8 = 2;
const KIND_PUNCT: u8 = 3;
const KIND_EOS: u8 = 4;
const KIND_HELLO: u8 = 5;
const KIND_CLOSE: u8 = 6;

const FLAG_FEEDBACK: u8 = 1;

/// Decode-side failures. Encoding is infallible (it appends to a `Vec`).
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The buffer ended before the value being read.
    Truncated,
    /// Bytes remained after a complete payload; carries the residue length.
    Trailing(usize),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// A data frame's dictionary epoch does not match the local codec's.
    EpochMismatch {
        /// The receiving codec's epoch.
        expected: u64,
        /// The epoch carried by the frame.
        got: u64,
    },
    /// An interned symbol id beyond the epoch's watermark (or otherwise
    /// unresolvable); carries the raw id.
    BadSymbol(u64),
    /// An inline string was not valid UTF-8.
    BadUtf8,
    /// A message-level tag byte the codec does not know.
    BadTag(u8),
    /// Handshake frame without the `SSJW` magic.
    BadMagic,
    /// Wire protocol version mismatch.
    Version {
        /// Our [`WIRE_VERSION`].
        expected: u16,
        /// The peer's version.
        got: u16,
    },
    /// A frame length prefix beyond [`MAX_FRAME_LEN`].
    FrameTooLarge(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("truncated frame"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after payload"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::EpochMismatch { expected, got } => {
                write!(
                    f,
                    "dictionary epoch mismatch: local {expected:#x}, frame {got:#x}"
                )
            }
            WireError::BadSymbol(id) => write!(f, "unresolvable symbol id {id}"),
            WireError::BadUtf8 => f.write_str("inline string is not valid UTF-8"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadMagic => f.write_str("bad handshake magic"),
            WireError::Version { expected, got } => {
                write!(f, "wire version mismatch: local {expected}, peer {got}")
            }
            WireError::FrameTooLarge(n) => write!(f, "frame length {n} exceeds cap"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------------

/// Append a LEB128 varint.
#[inline]
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a zigzag-encoded signed varint.
#[inline]
pub fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Append a length-prefixed UTF-8 string.
#[inline]
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked reader over one frame body. All reads advance the
/// position; byte-slice reads borrow from the underlying buffer (zero-copy
/// until the caller needs ownership).
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read one byte.
    #[inline]
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a little-endian `u16`.
    pub fn u16_le(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.bytes(2)?.try_into().expect("length checked"),
        ))
    }

    /// Read a little-endian `u32`.
    pub fn u32_le(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("length checked"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64_le(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("length checked"),
        ))
    }

    /// Read a LEB128 varint.
    #[inline]
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err(WireError::BadSymbol(v));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a zigzag-encoded signed varint.
    #[inline]
    pub fn zigzag(&mut self) -> Result<i64, WireError> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Borrow the next `n` bytes.
    #[inline]
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Read a length-prefixed UTF-8 string as a borrowed slice.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let n = self.varint()? as usize;
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        std::str::from_utf8(self.bytes(n)?).map_err(|_| WireError::BadUtf8)
    }

    /// Error unless the cursor consumed the whole buffer.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing(self.remaining()))
        }
    }
}

// ---------------------------------------------------------------------------
// Message codec
// ---------------------------------------------------------------------------

/// Serializes one topology message type against an epoch-versioned
/// dictionary snapshot. Implementations encode interned symbols as dense
/// ids when both sides' dictionaries agree (the steady state — frames carry
/// no strings) and fall back to inline self-describing encodings for
/// symbols interned after the epoch was taken.
pub trait WireCodec<M>: Send + Sync + 'static {
    /// Fingerprint of the dictionary snapshot this codec encodes against.
    /// Carried on every data frame and checked at decode; exchanged (and
    /// required equal) at the process-group handshake.
    fn epoch(&self) -> u64 {
        0
    }

    /// Append `msg`'s payload bytes to `out`.
    fn encode(&self, msg: &M, out: &mut Vec<u8>);

    /// Decode one message payload.
    fn decode(&self, cur: &mut Cursor) -> Result<M, WireError>;
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// The payload of one transport frame — the public mirror of the executor's
/// internal envelope, plus the transport-level `Close` token.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload<M> {
    /// One data message.
    Data(M),
    /// One micro-batch (one in-process `Envelope::Batch` = one frame).
    Batch(Vec<M>),
    /// Punctuation (window boundary) id.
    Punct(u64),
    /// End of stream from the sending task.
    Eos,
    /// The sending task dropped its senders for this edge: the wire
    /// analogue of an in-process channel disconnect. Once every producer
    /// behind a link has closed an edge, the receiver drops its local
    /// sender clone for it.
    Close,
}

/// One decoded transport frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame<M> {
    /// Receiving global task id.
    pub target: usize,
    /// Sending global task id.
    pub from: usize,
    /// Routed into the receiver's feedback channel instead of the forward
    /// channel.
    pub feedback: bool,
    /// The payload.
    pub payload: Payload<M>,
}

/// Append `frame` to `out` as one length-prefixed wire frame.
pub fn encode_frame<M: 'static>(frame: &Frame<M>, codec: &dyn WireCodec<M>, out: &mut Vec<u8>) {
    let at = out.len();
    out.extend_from_slice(&[0; 4]); // length back-patched below
    let kind = match &frame.payload {
        Payload::Data(_) => KIND_DATA,
        Payload::Batch(_) => KIND_BATCH,
        Payload::Punct(_) => KIND_PUNCT,
        Payload::Eos => KIND_EOS,
        Payload::Close => KIND_CLOSE,
    };
    out.push(kind);
    put_varint(out, frame.target as u64);
    put_varint(out, frame.from as u64);
    out.push(if frame.feedback { FLAG_FEEDBACK } else { 0 });
    match &frame.payload {
        Payload::Data(m) => {
            out.extend_from_slice(&codec.epoch().to_le_bytes());
            codec.encode(m, out);
        }
        Payload::Batch(ms) => {
            out.extend_from_slice(&codec.epoch().to_le_bytes());
            put_varint(out, ms.len() as u64);
            for m in ms {
                codec.encode(m, out);
            }
        }
        Payload::Punct(p) => put_varint(out, *p),
        Payload::Eos | Payload::Close => {}
    }
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Decode one frame body (the bytes *after* the length prefix). Rejects
/// data frames whose dictionary epoch differs from the codec's, and bodies
/// with trailing bytes.
pub fn decode_frame<M: 'static>(
    body: &[u8],
    codec: &dyn WireCodec<M>,
) -> Result<Frame<M>, WireError> {
    let mut cur = Cursor::new(body);
    let kind = cur.u8()?;
    let target = cur.varint()? as usize;
    let from = cur.varint()? as usize;
    let feedback = cur.u8()? & FLAG_FEEDBACK != 0;
    let payload = match kind {
        KIND_DATA | KIND_BATCH => {
            let got = cur.u64_le()?;
            let expected = codec.epoch();
            if got != expected {
                return Err(WireError::EpochMismatch { expected, got });
            }
            if kind == KIND_DATA {
                Payload::Data(codec.decode(&mut cur)?)
            } else {
                let n = cur.varint()? as usize;
                if n > cur.remaining() {
                    // Every message costs at least one byte; reject early so
                    // a corrupt count cannot trigger a huge reservation.
                    return Err(WireError::Truncated);
                }
                let mut ms = Vec::with_capacity(n);
                for _ in 0..n {
                    ms.push(codec.decode(&mut cur)?);
                }
                Payload::Batch(ms)
            }
        }
        KIND_PUNCT => Payload::Punct(cur.varint()?),
        KIND_EOS => Payload::Eos,
        KIND_CLOSE => Payload::Close,
        other => return Err(WireError::BadKind(other)),
    };
    cur.finish()?;
    Ok(Frame {
        target,
        from,
        feedback,
        payload,
    })
}

/// Read one length-prefixed frame body into `scratch` (replacing its
/// contents). Returns `Ok(false)` on a clean EOF at a frame boundary;
/// mid-frame EOF and oversized length prefixes are `Err`.
pub fn read_frame<R: Read>(r: &mut R, scratch: &mut Vec<u8>) -> std::io::Result<bool> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..])? {
            0 if got == 0 => return Ok(false),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length prefix",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            WireError::FrameTooLarge(len).to_string(),
        ));
    }
    scratch.clear();
    scratch.resize(len, 0);
    r.read_exact(scratch)?;
    Ok(true)
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// The control-plane handshake exchanged once per link at group join:
/// identifies the peer and pins the wire version, the topology fingerprint,
/// and the dictionary epoch the link will speak.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// The sending process's worker id.
    pub worker: usize,
    /// Total workers in the process group.
    pub workers: usize,
    /// Fingerprint of the deployed topology + placement.
    pub topo_fingerprint: u64,
    /// The sender's dictionary epoch (see [`WireCodec::epoch`]).
    pub dict_epoch: u64,
}

/// Append `hello` as one length-prefixed handshake frame.
pub fn encode_hello(hello: &Hello, out: &mut Vec<u8>) {
    let at = out.len();
    out.extend_from_slice(&[0; 4]);
    out.push(KIND_HELLO);
    out.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    put_varint(out, hello.worker as u64);
    put_varint(out, hello.workers as u64);
    out.extend_from_slice(&hello.topo_fingerprint.to_le_bytes());
    out.extend_from_slice(&hello.dict_epoch.to_le_bytes());
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Decode one handshake frame body, validating magic and version.
pub fn decode_hello(body: &[u8]) -> Result<Hello, WireError> {
    let mut cur = Cursor::new(body);
    let kind = cur.u8()?;
    if kind != KIND_HELLO {
        return Err(WireError::BadKind(kind));
    }
    if cur.u32_le()? != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = cur.u16_le()?;
    if version != WIRE_VERSION {
        return Err(WireError::Version {
            expected: WIRE_VERSION,
            got: version,
        });
    }
    let worker = cur.varint()? as usize;
    let workers = cur.varint()? as usize;
    let topo_fingerprint = cur.u64_le()?;
    let dict_epoch = cur.u64_le()?;
    cur.finish()?;
    Ok(Hello {
        worker,
        workers,
        topo_fingerprint,
        dict_epoch,
    })
}

/// FNV-1a, the workspace's convention for deterministic fingerprints
/// (dictionary epochs, topology fingerprints).
pub fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h = if seed == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        seed
    };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    struct U64Codec;
    impl WireCodec<u64> for U64Codec {
        fn epoch(&self) -> u64 {
            7
        }
        fn encode(&self, msg: &u64, out: &mut Vec<u8>) {
            put_varint(out, *msg);
        }
        fn decode(&self, cur: &mut Cursor) -> Result<u64, WireError> {
            cur.varint()
        }
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            assert_eq!(Cursor::new(&buf).varint().unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300] {
            buf.clear();
            put_zigzag(&mut buf, v);
            assert_eq!(Cursor::new(&buf).zigzag().unwrap(), v);
        }
    }

    #[test]
    fn frame_roundtrip_all_kinds() {
        let frames = vec![
            Frame {
                target: 3,
                from: 9,
                feedback: false,
                payload: Payload::Data(42u64),
            },
            Frame {
                target: 200,
                from: 0,
                feedback: true,
                payload: Payload::Batch(vec![1, 2, 3]),
            },
            Frame {
                target: 1,
                from: 2,
                feedback: false,
                payload: Payload::Punct(17),
            },
            Frame {
                target: 1,
                from: 2,
                feedback: false,
                payload: Payload::Eos,
            },
            Frame {
                target: 5,
                from: 6,
                feedback: true,
                payload: Payload::Close,
            },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            buf.clear();
            encode_frame(f, &U64Codec, &mut buf);
            let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
            assert_eq!(len, buf.len() - 4);
            let got = decode_frame(&buf[4..], &U64Codec).unwrap();
            assert_eq!(&got, f);
        }
    }

    #[test]
    fn epoch_mismatch_rejected() {
        struct Other;
        impl WireCodec<u64> for Other {
            fn epoch(&self) -> u64 {
                8
            }
            fn encode(&self, msg: &u64, out: &mut Vec<u8>) {
                put_varint(out, *msg);
            }
            fn decode(&self, cur: &mut Cursor) -> Result<u64, WireError> {
                cur.varint()
            }
        }
        let mut buf = Vec::new();
        encode_frame(
            &Frame {
                target: 0,
                from: 0,
                feedback: false,
                payload: Payload::Data(5u64),
            },
            &U64Codec,
            &mut buf,
        );
        assert_eq!(
            decode_frame(&buf[4..], &Other),
            Err(WireError::EpochMismatch {
                expected: 8,
                got: 7
            })
        );
        // Control frames carry no epoch and pass between mismatched codecs.
        buf.clear();
        encode_frame(
            &Frame {
                target: 0,
                from: 0,
                feedback: false,
                payload: Payload::Punct::<u64>(3),
            },
            &U64Codec,
            &mut buf,
        );
        assert!(decode_frame(&buf[4..], &Other).is_ok());
    }

    #[test]
    fn truncation_and_trailing_are_errors_not_panics() {
        let mut buf = Vec::new();
        encode_frame(
            &Frame {
                target: 1,
                from: 2,
                feedback: false,
                payload: Payload::Batch(vec![10u64, 20, 30]),
            },
            &U64Codec,
            &mut buf,
        );
        let body = &buf[4..];
        for cut in 0..body.len() {
            assert!(
                decode_frame(&body[..cut], &U64Codec).is_err(),
                "truncation at {cut} must error"
            );
        }
        let mut padded = body.to_vec();
        padded.push(0);
        assert_eq!(
            decode_frame(&padded, &U64Codec),
            Err(WireError::Trailing(1))
        );
        assert!(matches!(
            decode_frame(&[99, 0, 0, 0], &U64Codec),
            Err(WireError::BadKind(99))
        ));
    }

    #[test]
    fn hello_roundtrip_and_validation() {
        let h = Hello {
            worker: 1,
            workers: 4,
            topo_fingerprint: 0xdead_beef,
            dict_epoch: 0x1234,
        };
        let mut buf = Vec::new();
        encode_hello(&h, &mut buf);
        assert_eq!(decode_hello(&buf[4..]).unwrap(), h);
        // Corrupt the magic.
        let mut bad = buf[4..].to_vec();
        bad[1] ^= 0xff;
        assert_eq!(decode_hello(&bad), Err(WireError::BadMagic));
        // Corrupt the version.
        let mut bad = buf[4..].to_vec();
        bad[5] = 0x7f;
        assert!(matches!(decode_hello(&bad), Err(WireError::Version { .. })));
    }

    #[test]
    fn read_frame_handles_eof() {
        let mut buf = Vec::new();
        encode_frame(
            &Frame {
                target: 0,
                from: 0,
                feedback: false,
                payload: Payload::Punct::<u64>(1),
            },
            &U64Codec,
            &mut buf,
        );
        let mut scratch = Vec::new();
        let mut r = std::io::Cursor::new(buf.clone());
        assert!(read_frame(&mut r, &mut scratch).unwrap());
        assert!(decode_frame(&scratch, &U64Codec).is_ok());
        assert!(!read_frame(&mut r, &mut scratch).unwrap(), "clean EOF");
        // Mid-frame EOF is an error.
        let mut r = std::io::Cursor::new(buf[..buf.len() - 1].to_vec());
        assert!(read_frame(&mut r, &mut scratch).is_err());
        // Oversized length prefix is corruption, not an allocation.
        let huge = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        let mut r = std::io::Cursor::new(huge);
        assert!(read_frame(&mut r, &mut scratch).is_err());
    }
}
