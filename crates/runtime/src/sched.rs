//! The pooled work-stealing scheduler (DESIGN.md §4e): a fixed set of
//! optionally core-pinned worker threads cooperatively scheduling many bolt
//! tasks, so `m ≫ cores` joiners run without one-OS-thread-per-task
//! oversubscription.
//!
//! Architecture:
//! * Each worker owns a FIFO deque of ready task ids; a shared injector
//!   receives tasks made ready by *other* threads (producers notifying
//!   their targets, the initial seeding). A worker pops its own deque
//!   first, then steals from the injector, then from sibling deques.
//! * A task is a type-erased [`TaskStep`]: one `step()` drains up to
//!   [`TICK_BUDGET`] envelopes via non-blocking receives and reports
//!   whether it is out of input (`Idle`), out of budget (`More`), or
//!   retired (`Done`).
//! * Readiness is edge-triggered: every successful envelope send notifies
//!   the receiving task through [`Hub::notify`]. A per-task state machine
//!   (`IDLE → QUEUED → RUNNING → …`) makes the notify/park handshake
//!   lossless — a notification landing *while* the task runs flips it to
//!   `RUNNING_NOTIFIED`, which requeues it instead of idling it, so an
//!   envelope arriving just after the task saw an empty channel is never
//!   stranded.
//! * Workers with no runnable task park on a per-worker condvar after
//!   registering in a sleeper list and re-checking the injector (the
//!   re-check closes the register/notify race). A notify pushes work
//!   *first*, then wakes one sleeper.
//!
//! The scheduler publishes a `scheduler_*` counter family (steals, parks,
//! wakeups) plus a queue-depth gauge per worker, registered in the run's
//! metrics registry under the `scheduler` component.

use crate::metrics::TaskInstruments;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Envelopes one task may drain per scheduling quantum before yielding the
/// worker. Large enough to amortize dispatch, small enough that a flooded
/// joiner cannot starve its siblings.
pub(crate) const TICK_BUDGET: usize = 256;

/// A cooperatively scheduled task, type-erased over the topology's message
/// type.
pub(crate) trait TaskStep: Send {
    /// Run one scheduling quantum.
    fn step(&mut self) -> StepOutcome;
}

/// What a [`TaskStep::step`] call reports back to its worker.
pub(crate) enum StepOutcome {
    /// Input exhausted: park until an upstream notification requeues us.
    Idle,
    /// Budget exhausted with input remaining: requeue immediately.
    More,
    /// Retired: EOS propagation is complete, drop the task.
    Done,
}

// Per-task scheduling states. Only the worker that moved a task to RUNNING
// may move it out; producers may only flip IDLE→QUEUED (enqueueing it) or
// RUNNING→RUNNING_NOTIFIED (demanding a requeue after the current step).
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RUNNING_NOTIFIED: u8 = 3;
const DONE: u8 = 4;

/// Naming convention shared by every runtime service thread (pool workers,
/// the metrics collector): `ssj-sched-<role>-<index>`.
pub(crate) fn thread_name(role: &str, idx: usize) -> String {
    format!("ssj-sched-{role}-{idx}")
}

struct Parker {
    flag: Mutex<bool>,
    cv: Condvar,
}

/// Shared scheduler state: task state machines, bodies, the injector, and
/// the parking protocol. Producers hold it (via their outboxes) to notify
/// targets; workers hold it to claim and run tasks.
pub(crate) struct Hub {
    /// Per global task: scheduling state (see the `const` states above).
    states: Vec<AtomicU8>,
    /// Per global task: scheduled on the pool? Dedicated-thread tasks
    /// (spouts, recv-timeout bolts) are woken by their channel condvars
    /// instead, so notifications to them are no-ops.
    pooled: Vec<bool>,
    /// Per global task: the type-erased body, present while live. The state
    /// machine gives the claiming worker exclusive access, so the mutex is
    /// uncontended after installation.
    bodies: Vec<Mutex<Option<Box<dyn TaskStep>>>>,
    /// Per global task: `component[task]` label for panic reporting.
    labels: Vec<String>,
    /// Per global task: downstream global ids (forward and feedback),
    /// nudged when the task retires so its dropped senders are observed
    /// without a blocking receive.
    downstream: Vec<Vec<usize>>,
    /// Ready tasks queued by non-worker threads (and the initial seeding).
    injector: Injector<usize>,
    /// Worker ids currently parked (registration order).
    sleepers: Mutex<Vec<usize>>,
    parkers: Vec<Parker>,
    /// Pool-scheduled tasks not yet DONE; the pool shuts down at zero.
    live: AtomicUsize,
    shutdown: AtomicBool,
    /// `(global, label)` of pooled tasks whose step panicked terminally.
    panicked: Mutex<Vec<(usize, String)>>,
}

impl Hub {
    pub(crate) fn new(
        pooled: Vec<bool>,
        downstream: Vec<Vec<usize>>,
        labels: Vec<String>,
        workers: usize,
    ) -> Hub {
        let total = pooled.len();
        let live = pooled.iter().filter(|&&p| p).count();
        Hub {
            states: (0..total).map(|_| AtomicU8::new(IDLE)).collect(),
            pooled,
            bodies: (0..total).map(|_| Mutex::new(None)).collect(),
            labels,
            downstream,
            injector: Injector::new(),
            sleepers: Mutex::new(Vec::new()),
            parkers: (0..workers)
                .map(|_| Parker {
                    flag: Mutex::new(false),
                    cv: Condvar::new(),
                })
                .collect(),
            live: AtomicUsize::new(live),
            shutdown: AtomicBool::new(live == 0),
            panicked: Mutex::new(Vec::new()),
        }
    }

    /// Install a pooled task's body; it stays parked until [`Hub::seed`]
    /// or a notification queues it.
    pub(crate) fn install(&self, global: usize, body: Box<dyn TaskStep>) {
        *self.bodies[global].lock().unwrap() = Some(body);
    }

    /// Queue every pooled task once so each gets an initial step (a task
    /// whose input is already waiting starts immediately; the rest park).
    pub(crate) fn seed(&self) {
        for g in 0..self.pooled.len() {
            if self.pooled[g] {
                self.notify(g);
            }
        }
    }

    /// Edge-triggered readiness: called by producers after every successful
    /// envelope send to `global`, and on upstream retirement. Lossless by
    /// construction: a task in RUNNING is flipped to RUNNING_NOTIFIED so
    /// its worker requeues it instead of idling it.
    pub(crate) fn notify(&self, global: usize) {
        if !self.pooled[global] {
            return;
        }
        let state = &self.states[global];
        loop {
            match state.compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    self.injector.push(global);
                    self.wake_one();
                    return;
                }
                Err(RUNNING) => {
                    if state
                        .compare_exchange(
                            RUNNING,
                            RUNNING_NOTIFIED,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return;
                    }
                    // Raced with the worker releasing the task; retry.
                }
                Err(QUEUED) | Err(RUNNING_NOTIFIED) | Err(DONE) => return,
                Err(_) => unreachable!("invalid scheduler task state"),
            }
        }
    }

    /// A dedicated-thread task (spout or recv-timeout bolt) exited: nudge
    /// its pooled downstream so they observe the channel disconnect.
    pub(crate) fn retire_external(&self, global: usize) {
        for &d in &self.downstream[global] {
            self.notify(d);
        }
    }

    /// Labels of pooled tasks that panicked, in global task order (matching
    /// the legacy executor's spawn-order reporting).
    pub(crate) fn panicked_labels(&self) -> Vec<(usize, String)> {
        let mut v = self.panicked.lock().unwrap().clone();
        v.sort();
        v
    }

    fn wake_one(&self) {
        let Some(w) = self.sleepers.lock().unwrap().pop() else {
            return;
        };
        let mut flag = self.parkers[w].flag.lock().unwrap();
        *flag = true;
        self.parkers[w].cv.notify_one();
    }

    fn wake_all(&self) {
        let sleeping: Vec<usize> = std::mem::take(&mut *self.sleepers.lock().unwrap());
        for w in sleeping {
            let mut flag = self.parkers[w].flag.lock().unwrap();
            *flag = true;
            self.parkers[w].cv.notify_one();
        }
    }

    /// Park worker `w` until notified. Registers in the sleeper list first,
    /// then re-checks the injector: a notification that pushed before the
    /// registration found no sleeper to wake, so the re-check is what keeps
    /// the handshake lossless.
    fn park(&self, w: usize) {
        {
            let mut sleeping = self.sleepers.lock().unwrap();
            *self.parkers[w].flag.lock().unwrap() = false;
            sleeping.push(w);
        }
        if !self.injector.is_empty() || self.shutdown.load(Ordering::Acquire) {
            self.sleepers.lock().unwrap().retain(|&s| s != w);
            return;
        }
        let mut flag = self.parkers[w].flag.lock().unwrap();
        while !*flag {
            flag = self.parkers[w].cv.wait(flag).unwrap();
        }
    }

    /// A pooled task retired (or panicked): notify its downstream, and shut
    /// the pool down when it was the last one.
    fn task_done(&self, global: usize) {
        for &d in &self.downstream[global] {
            self.notify(d);
        }
        if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.shutdown.store(true, Ordering::Release);
            self.wake_all();
        }
    }
}

/// CPU affinity via a direct `pthread_setaffinity_np` declaration (glibc is
/// already linked through std, so no extra dependency is needed). No-op on
/// non-Linux targets.
#[cfg(target_os = "linux")]
mod affinity {
    #[repr(C)]
    struct CpuSet {
        // Matches glibc's cpu_set_t: 1024 bits.
        bits: [u64; 16],
    }

    extern "C" {
        fn pthread_self() -> usize;
        fn pthread_setaffinity_np(thread: usize, cpusetsize: usize, cpuset: *const CpuSet) -> i32;
    }

    /// Pin the calling thread to `cpu`; returns whether the kernel accepted.
    pub(super) fn pin_current(cpu: usize) -> bool {
        let mut set = CpuSet { bits: [0; 16] };
        set.bits[(cpu / 64) % 16] |= 1 << (cpu % 64);
        // SAFETY: `set` is a properly initialized glibc-layout cpu_set_t and
        // outlives the call; pinning the calling thread has no memory-safety
        // implications.
        unsafe { pthread_setaffinity_np(pthread_self(), std::mem::size_of::<CpuSet>(), &set) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod affinity {
    pub(super) fn pin_current(_cpu: usize) -> bool {
        false
    }
}

/// Resolve a requested worker count: 0 means auto (the machine's available
/// parallelism); the result is clamped to the number of pooled tasks so
/// tiny topologies don't spawn idle workers.
pub(crate) fn resolve_workers(requested: usize, pooled_tasks: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let n = if requested == 0 { auto } else { requested };
    n.clamp(1, pooled_tasks.max(1))
}

/// Spawn the worker pool. `insts[w]` is worker `w`'s instrument set for the
/// `scheduler_*` counter family; `pin_cores` pins worker `w` to core
/// `w % cores`. Callers must [`Hub::seed`] first and join the returned
/// handles; panicked pooled tasks are reported via [`Hub::panicked_labels`].
pub(crate) fn spawn_pool(
    hub: &Arc<Hub>,
    workers: usize,
    pin_cores: bool,
    insts: Vec<Arc<TaskInstruments>>,
) -> Vec<std::thread::JoinHandle<()>> {
    debug_assert_eq!(insts.len(), workers);
    let locals: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Arc<Vec<Stealer<usize>>> = Arc::new(locals.iter().map(Worker::stealer).collect());
    locals
        .into_iter()
        .zip(insts)
        .enumerate()
        .map(|(w, (local, inst))| {
            let hub = Arc::clone(hub);
            let stealers = Arc::clone(&stealers);
            std::thread::Builder::new()
                .name(thread_name("worker", w))
                .spawn(move || worker_loop(&hub, w, local, &stealers, &inst, pin_cores))
                .expect("spawn pool worker thread")
        })
        .collect()
}

fn worker_loop(
    hub: &Hub,
    w: usize,
    local: Worker<usize>,
    stealers: &[Stealer<usize>],
    inst: &TaskInstruments,
    pin_cores: bool,
) {
    if pin_cores {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        if !affinity::pin_current(w % cores) {
            inst.counter("scheduler_pin_failures").inc();
        }
    }
    let steals = inst.counter("scheduler_steals");
    let parks = inst.counter("scheduler_parks");
    let wakeups = inst.counter("scheduler_wakeups");
    loop {
        if hub.shutdown.load(Ordering::Acquire) {
            break;
        }
        let task = local.pop().or_else(|| {
            // Out of local work: steal from the injector, then siblings.
            loop {
                match hub.injector.steal() {
                    Steal::Success(t) => {
                        steals.inc();
                        return Some(t);
                    }
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
            for (s, stealer) in stealers.iter().enumerate() {
                if s == w {
                    continue;
                }
                loop {
                    match stealer.steal() {
                        Steal::Success(t) => {
                            steals.inc();
                            return Some(t);
                        }
                        Steal::Retry => continue,
                        Steal::Empty => break,
                    }
                }
            }
            None
        });
        match task {
            Some(t) => run_one(hub, t, &local),
            None => {
                inst.queue_depth_gauge().set(hub.injector.len() as i64);
                parks.inc();
                hub.park(w);
                wakeups.inc();
            }
        }
    }
}

/// Claim task `t`, run one step, and resolve its post-step state. Panics
/// unwinding out of a step are terminal for that task: the body is dropped
/// (disconnecting its channels) and the label recorded for
/// [`crate::RunError::TaskPanicked`], exactly like a dying task thread
/// under the legacy executor.
fn run_one(hub: &Hub, t: usize, local: &Worker<usize>) {
    if hub.states[t]
        .compare_exchange(QUEUED, RUNNING, Ordering::AcqRel, Ordering::Acquire)
        .is_err()
    {
        // Stale queue entry (task retired since); nothing to run.
        return;
    }
    let Some(mut body) = hub.bodies[t].lock().unwrap().take() else {
        hub.states[t].store(DONE, Ordering::Release);
        return;
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| body.step()));
    match outcome {
        Ok(StepOutcome::Idle) => {
            *hub.bodies[t].lock().unwrap() = Some(body);
            if hub.states[t]
                .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // Notified while running: an envelope landed after the step
                // saw empty channels. Requeue so it is not stranded.
                hub.states[t].store(QUEUED, Ordering::Release);
                local.push(t);
            }
        }
        Ok(StepOutcome::More) => {
            *hub.bodies[t].lock().unwrap() = Some(body);
            hub.states[t].store(QUEUED, Ordering::Release);
            local.push(t);
            // Siblings may be parked while this worker is saturated.
            hub.wake_one();
        }
        Ok(StepOutcome::Done) => {
            hub.states[t].store(DONE, Ordering::Release);
            // Drop the body *before* notifying downstream: its outbox (the
            // only senders to the targets) must disconnect first.
            drop(body);
            hub.task_done(t);
        }
        Err(_) => {
            hub.states[t].store(DONE, Ordering::Release);
            drop(body);
            hub.panicked
                .lock()
                .unwrap()
                .push((t, hub.labels[t].clone()));
            hub.task_done(t);
        }
    }
}
