//! Observability: a lock-free metrics registry, log-linear latency
//! histograms, and a bounded window-lifecycle trace ring.
//!
//! Design constraints (see DESIGN.md §4c):
//!
//! * **Zero hot-path atomics.** Task threads accumulate counters and
//!   histogram buckets in plain (non-atomic) locals and publish them into
//!   their [`TaskInstruments`] — single-writer atomic cells — only at
//!   window boundaries (punctuation) and at end of stream. The collector
//!   thread reads the atomics with `Relaxed` loads; per-window snapshots
//!   only need punctuation-boundary freshness, which is exactly when the
//!   locals are flushed.
//! * **Zero allocation on the hot path.** Histograms are fixed arrays of
//!   log-linear buckets (each power-of-two octave splits into `2^SUB_BITS`
//!   linear sub-buckets); recording is a leading-zeros, a shift, and an
//!   add. The trace ring has a fixed capacity and recycles slots.
//! * **Per-punctuation time series.** Every task notifies the collector
//!   after flushing at a window boundary; once *all* tasks have reported
//!   window `w`, the collector snapshots the whole registry. Snapshots are
//!   cumulative, hence monotone across punctuations.
//!
//! Bolts hook into the registry through
//! [`Bolt::attach_instruments`](crate::Bolt::attach_instruments): register
//! named counters / gauges / histograms once at startup, hold the `Arc`
//! handles, and record into them directly (they are single-writer too).

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` linear sub-buckets, bounding the quantile error at
/// `1/2^SUB_BITS` (12.5%) instead of the 2x a pure power-of-two layout
/// allows — coarse enough to stay a flat array, fine enough that paired
/// tail-latency gates (see `bench_latency`) can resolve real ratios.
const SUB_BITS: u32 = 3;
const SUBS: u64 = 1 << SUB_BITS;

/// Number of log-linear histogram buckets (covers the full `u64` range):
/// values below `2^SUB_BITS` get exact buckets, every octave above
/// contributes `2^SUB_BITS` linear sub-buckets.
pub const HISTOGRAM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUBS as usize;

/// Bucket index of a nanosecond value (log-linear; monotone in `ns`).
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    if ns < SUBS {
        ns as usize
    } else {
        let o = 63 - ns.leading_zeros() as u64; // octave, >= SUB_BITS
                                                // The SUB_BITS bits below the leading one select the sub-bucket.
        let sub = (ns >> (o - SUB_BITS as u64)) & (SUBS - 1);
        ((o - SUB_BITS as u64 + 1) * SUBS + sub) as usize
    }
}

/// Inclusive upper bound of bucket `i`, saturating at `u64::MAX`.
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    if i < SUBS as usize {
        i as u64
    } else {
        let o = i as u64 / SUBS + SUB_BITS as u64 - 1;
        let sub = i as u64 % SUBS;
        let width = 1u64 << (o - SUB_BITS as u64);
        (1u64 << o)
            .checked_add((sub + 1) * width)
            .map(|v| v - 1)
            .unwrap_or(u64::MAX)
    }
}

/// A monotone atomic counter.
///
/// Two write disciplines coexist: the executor *publishes* cumulative local
/// values with [`Counter::store`] at window boundaries (single writer), and
/// bolt-registered counters *increment* with [`Counter::add`]. Both are
/// `Relaxed` — cross-counter ordering is established by the collector
/// protocol, not by the cells.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Publish an absolute (cumulative) value.
    #[inline]
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins atomic gauge (e.g. queue depth).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log-linear latency histogram over nanoseconds.
///
/// Shared (atomic) variant; the executor's hot path uses [`LocalHistogram`]
/// and publishes cumulative bucket counts here at window boundaries.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos() as u64);
    }

    /// Record one duration in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
    }

    /// Publish cumulative local state (single-writer discipline).
    pub(crate) fn publish(&self, local: &LocalHistogram) {
        for (i, &c) in local.buckets.iter().enumerate() {
            if c != 0 {
                self.buckets[i].store(c, Ordering::Relaxed);
            }
        }
        self.count.store(local.count, Ordering::Relaxed);
        self.sum.store(local.sum, Ordering::Relaxed);
    }

    /// Read a consistent-enough copy (collector side).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u16, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c != 0).then_some((i as u16, c))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// The executor's thread-local histogram: plain integers, no atomics.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl LocalHistogram {
    /// A fresh empty local histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration in nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum += ns;
    }

    /// Record an envelope of `n` tuples handled in `total_ns` altogether:
    /// each tuple is counted once, at the bucket of the per-tuple average.
    /// This keeps "histogram count == tuples processed" without a second
    /// clock read per tuple.
    #[inline]
    pub fn record_scaled(&mut self, total_ns: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_of(total_ns / n)] += n;
        self.count += n;
        self.sum += total_ns;
    }
}

/// A point-in-time copy of one histogram (non-empty buckets only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all recorded nanoseconds.
    pub sum_ns: u64,
    /// `(bucket index, count)` for non-empty buckets, ascending.
    pub buckets: Vec<(u16, u64)>,
}

impl HistogramSnapshot {
    /// Mean recorded value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in `[0, 1]`); 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_bound(i as usize);
            }
        }
        bucket_bound(self.buckets.last().map(|&(i, _)| i as usize).unwrap_or(0))
    }
}

/// What happened, for [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// First tuple of a window arrived at a task.
    WindowOpen,
    /// A window boundary (punctuation) was processed by a task; `dur_ns` is
    /// the close-to-emit time (window work plus output flush).
    WindowClose,
    /// An output flush outside a window boundary.
    Flush,
    /// A probe/join batch ran; `dur_ns` is its duration.
    Probe,
    /// A repartition signal was raised (§VI-A feedback).
    Repartition,
    /// A partition table was (re)broadcast.
    Table,
    /// A task reached end of stream.
    Eos,
}

impl TraceKind {
    /// Stable lowercase label (used in JSON lines).
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::WindowOpen => "window_open",
            TraceKind::WindowClose => "window_close",
            TraceKind::Flush => "flush",
            TraceKind::Probe => "probe",
            TraceKind::Repartition => "repartition",
            TraceKind::Table => "table",
            TraceKind::Eos => "eos",
        }
    }
}

/// One window-lifecycle event. `Copy`, fixed size — recording never
/// allocates (the ring recycles slots once it is warm).
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Nanoseconds since the run started.
    pub t_ns: u64,
    /// Global task index (resolve via [`RunReport`](crate::RunReport)
    /// task order).
    pub task: u32,
    /// Event kind.
    pub kind: TraceKind,
    /// Window id the event belongs to (`u64::MAX` when not applicable).
    pub window: u64,
    /// Span duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s shared by all tasks; when full,
/// the oldest events are overwritten. Events are rare (window boundaries,
/// control signals), so one mutex is not a hot-path concern.
pub struct TraceRing {
    cap: usize,
    inner: Mutex<VecDeque<TraceEvent>>,
    /// Events dropped because the ring was full.
    dropped: AtomicU64,
}

impl TraceRing {
    /// A ring holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap: cap.max(1),
            inner: Mutex::new(VecDeque::with_capacity(cap.max(1))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn record(&self, ev: TraceEvent) {
        let mut ring = self.inner.lock();
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Copy out the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().iter().copied().collect()
    }

    /// Number of events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// The per-task instrument set: core counters the executor publishes into,
/// plus bolt-registered named instruments.
pub struct TaskInstruments {
    /// Component name.
    pub component: String,
    /// Task index within the component.
    pub task: usize,
    /// Global task index (position in the registry).
    pub global: usize,
    pub(crate) received: Counter,
    pub(crate) emitted: Counter,
    pub(crate) batches: Counter,
    pub(crate) puncts: Counter,
    pub(crate) busy_ns: Counter,
    pub(crate) handle_ns: Histogram,
    pub(crate) close_ns: Histogram,
    pub(crate) queue_depth: Gauge,
    named_counters: Mutex<Vec<(String, Arc<Counter>)>>,
    named_gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    named_histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
    trace: Arc<TraceRing>,
    epoch: Instant,
    enabled: bool,
}

impl TaskInstruments {
    /// Whether histogram/trace collection is on for this run. Counters are
    /// always maintained (they feed [`RunReport`](crate::RunReport)).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Publish the executor's cumulative core counters (single writer).
    pub(crate) fn publish_core(
        &self,
        received: u64,
        emitted: u64,
        batches: u64,
        puncts: u64,
        busy_ns: u64,
    ) {
        self.received.store(received);
        self.emitted.store(emitted);
        self.batches.store(batches);
        self.puncts.store(puncts);
        self.busy_ns.store(busy_ns);
    }

    /// Publish the executor's cumulative local histograms (single writer).
    pub(crate) fn publish_histograms(&self, handle: &LocalHistogram, close: &LocalHistogram) {
        self.handle_ns.publish(handle);
        self.close_ns.publish(close);
    }

    /// The core queue-depth gauge, sampled by the executor at window
    /// boundaries.
    pub(crate) fn queue_depth_gauge(&self) -> &Gauge {
        &self.queue_depth
    }

    /// Get or register a named counter (idempotent by name).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.named_counters, name)
    }

    /// Get or register a named gauge (idempotent by name).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.named_gauges, name)
    }

    /// Get or register a named histogram (idempotent by name).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.named_histograms, name)
    }

    /// Record a trace event for this task (no-op when collection is off).
    pub fn trace(&self, kind: TraceKind, window: u64, dur: Duration) {
        if !self.enabled {
            return;
        }
        self.trace.record(TraceEvent {
            t_ns: self.epoch.elapsed().as_nanos() as u64,
            task: self.global as u32,
            kind,
            window,
            dur_ns: dur.as_nanos() as u64,
        });
    }

    /// Snapshot every instrument of this task.
    pub fn snapshot(&self) -> TaskSnapshot {
        let mut counters = vec![
            ("received".to_owned(), self.received.get()),
            ("emitted".to_owned(), self.emitted.get()),
            ("batches".to_owned(), self.batches.get()),
            ("puncts".to_owned(), self.puncts.get()),
            ("busy_ns".to_owned(), self.busy_ns.get()),
        ];
        for (name, c) in self.named_counters.lock().iter() {
            counters.push((name.clone(), c.get()));
        }
        let mut gauges = vec![("queue_depth".to_owned(), self.queue_depth.get())];
        for (name, g) in self.named_gauges.lock().iter() {
            gauges.push((name.clone(), g.get()));
        }
        let mut histograms = Vec::new();
        if self.enabled {
            histograms.push(("handle_ns".to_owned(), self.handle_ns.snapshot()));
            histograms.push(("window_close_ns".to_owned(), self.close_ns.snapshot()));
        }
        for (name, h) in self.named_histograms.lock().iter() {
            histograms.push((name.clone(), h.snapshot()));
        }
        TaskSnapshot {
            component: self.component.clone(),
            task: self.task,
            counters,
            gauges,
            histograms,
        }
    }
}

fn get_or_insert<T: Default>(slot: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut list = slot.lock();
    if let Some((_, v)) = list.iter().find(|(n, _)| n == name) {
        return Arc::clone(v);
    }
    let v = Arc::new(T::default());
    list.push((name.to_owned(), Arc::clone(&v)));
    v
}

/// A point-in-time copy of one task's instruments.
#[derive(Debug, Clone)]
pub struct TaskSnapshot {
    /// Component name.
    pub component: String,
    /// Task index within the component.
    pub task: usize,
    /// `(name, value)` counters; core names are `received`, `emitted`,
    /// `batches`, `puncts`, `busy_ns`.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges; core name is `queue_depth`.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` histograms; core names are `handle_ns` and
    /// `window_close_ns` (present only when metrics collection is on).
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl TaskSnapshot {
    /// A counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// A gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// A whole-registry snapshot taken after every task flushed window `window`.
/// Counters are cumulative since run start, so successive snapshots are
/// monotone per task and counter.
#[derive(Debug, Clone)]
pub struct WindowSnapshot {
    /// The window (punctuation id) this snapshot closes.
    pub window: u64,
    /// One entry per task, in global task order.
    pub tasks: Vec<TaskSnapshot>,
}

/// Metrics configuration of a run.
#[derive(Debug, Clone, Copy)]
pub struct MetricsConfig {
    /// Collect histograms, traces and per-window snapshots. Counters are
    /// maintained regardless; when off, the hot path is identical to an
    /// uninstrumented run.
    pub enabled: bool,
    /// Capacity of the window-lifecycle trace ring.
    pub trace_capacity: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            enabled: false,
            trace_capacity: 4096,
        }
    }
}

/// The registry: one [`TaskInstruments`] per task, a shared trace ring, and
/// the run epoch. Built once before the tasks spawn; thereafter reads and
/// writes are atomics only — no lock is ever taken on the data path.
pub struct MetricsRegistry {
    tasks: Vec<Arc<TaskInstruments>>,
    trace: Arc<TraceRing>,
    epoch: Instant,
    config: MetricsConfig,
}

impl MetricsRegistry {
    /// A fresh registry.
    pub fn new(config: MetricsConfig) -> Self {
        MetricsRegistry {
            tasks: Vec::new(),
            trace: Arc::new(TraceRing::new(config.trace_capacity)),
            epoch: Instant::now(),
            config,
        }
    }

    /// Register the next task (global index = registration order).
    pub fn register(&mut self, component: &str, task: usize) -> Arc<TaskInstruments> {
        let inst = Arc::new(TaskInstruments {
            component: component.to_owned(),
            task,
            global: self.tasks.len(),
            received: Counter::new(),
            emitted: Counter::new(),
            batches: Counter::new(),
            puncts: Counter::new(),
            busy_ns: Counter::new(),
            handle_ns: Histogram::new(),
            close_ns: Histogram::new(),
            queue_depth: Gauge::new(),
            named_counters: Mutex::new(Vec::new()),
            named_gauges: Mutex::new(Vec::new()),
            named_histograms: Mutex::new(Vec::new()),
            trace: Arc::clone(&self.trace),
            epoch: self.epoch,
            enabled: self.config.enabled,
        });
        self.tasks.push(Arc::clone(&inst));
        inst
    }

    /// Whether full collection is on.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Number of registered tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no task registered yet.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Snapshot every task's instruments, in global task order.
    pub fn snapshot_tasks(&self) -> Vec<TaskSnapshot> {
        self.tasks.iter().map(|t| t.snapshot()).collect()
    }

    /// The shared trace ring.
    pub fn trace(&self) -> &Arc<TraceRing> {
        &self.trace
    }
}

// ---------------------------------------------------------------------------
// Report rendering (JSON lines + human table) — shared by the CLI and bench.
// ---------------------------------------------------------------------------

/// Minimal JSON string escaping (component names, labels).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize one task snapshot as the tail of a JSON-lines record (shared
/// between per-window and final lines).
fn task_json(t: &TaskSnapshot) -> String {
    let counters = t
        .counters
        .iter()
        .map(|(n, v)| format!("\"{}\":{}", esc(n), v))
        .collect::<Vec<_>>()
        .join(",");
    let gauges = t
        .gauges
        .iter()
        .map(|(n, v)| format!("\"{}\":{}", esc(n), v))
        .collect::<Vec<_>>()
        .join(",");
    let hists = t
        .histograms
        .iter()
        .map(|(n, h)| {
            let buckets = h
                .buckets
                .iter()
                .map(|&(i, c)| format!("[{},{}]", bucket_bound(i as usize), c))
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "\"{}\":{{\"count\":{},\"sum_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"buckets\":[{}]}}",
                esc(n),
                h.count,
                h.sum_ns,
                h.quantile_ns(0.50),
                h.quantile_ns(0.99),
                buckets
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "\"component\":\"{}\",\"task\":{},\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}",
        esc(&t.component),
        t.task,
        counters,
        gauges,
        hists
    )
}

/// Write per-window and final metrics as JSON lines: one record per
/// `(window, task)`, then one `"window":"final"` record per task, then one
/// `"trace"` record per retained trace event.
pub fn write_jsonl<W: Write>(
    out: &mut W,
    windows: &[WindowSnapshot],
    finals: &[TaskSnapshot],
    trace: &[TraceEvent],
) -> io::Result<()> {
    for w in windows {
        for t in &w.tasks {
            writeln!(out, "{{\"window\":{},{}}}", w.window, task_json(t))?;
        }
    }
    for t in finals {
        writeln!(out, "{{\"window\":\"final\",{}}}", task_json(t))?;
    }
    for ev in trace {
        let label = finals
            .get(ev.task as usize)
            .map(|t| format!("{}[{}]", t.component, t.task))
            .unwrap_or_else(|| format!("task{}", ev.task));
        writeln!(
            out,
            "{{\"trace\":{{\"t_ns\":{},\"task\":\"{}\",\"kind\":\"{}\",\"window\":{},\"dur_ns\":{}}}}}",
            ev.t_ns,
            esc(&label),
            ev.kind.label(),
            if ev.window == u64::MAX { 0 } else { ev.window },
            ev.dur_ns
        )?;
    }
    Ok(())
}

/// Render a per-component human summary table from final task snapshots:
/// throughput counters plus handle-latency percentiles when collected.
pub fn summary_table(finals: &[TaskSnapshot]) -> String {
    use std::fmt::Write as _;
    let mut components: Vec<&str> = Vec::new();
    for t in finals {
        if !components.contains(&t.component.as_str()) {
            components.push(&t.component);
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:>12} {:>12} {:>9} {:>10} {:>12} {:>12}",
        "component", "tasks", "received", "emitted", "windows", "busy", "handle p50", "handle p99"
    );
    for comp in components {
        let tasks: Vec<&TaskSnapshot> = finals.iter().filter(|t| t.component == comp).collect();
        let sum = |name: &str| tasks.iter().map(|t| t.counter(name)).sum::<u64>();
        let mut merged = HistogramSnapshot {
            count: 0,
            sum_ns: 0,
            buckets: Vec::new(),
        };
        let mut bucket_acc = [0u64; HISTOGRAM_BUCKETS];
        for t in &tasks {
            if let Some(h) = t.histogram("handle_ns") {
                merged.count += h.count;
                merged.sum_ns += h.sum_ns;
                for &(i, c) in &h.buckets {
                    bucket_acc[i as usize] += c;
                }
            }
        }
        merged.buckets = bucket_acc
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c != 0).then_some((i as u16, c)))
            .collect();
        let windows = tasks.iter().map(|t| t.counter("puncts")).max().unwrap_or(0);
        let busy = Duration::from_nanos(sum("busy_ns") / tasks.len().max(1) as u64);
        let (p50, p99) = if merged.count > 0 {
            (
                format!("{:?}", Duration::from_nanos(merged.quantile_ns(0.50))),
                format!("{:?}", Duration::from_nanos(merged.quantile_ns(0.99))),
            )
        } else {
            ("-".to_owned(), "-".to_owned())
        };
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>12} {:>12} {:>9} {:>10} {:>12} {:>12}",
            comp,
            tasks.len(),
            sum("received"),
            sum("emitted"),
            windows,
            format!("{:.2?}", busy),
            p50,
            p99
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math() {
        // Small values get exact buckets.
        for ns in 0..SUBS {
            assert_eq!(bucket_of(ns), ns as usize);
            assert_eq!(bucket_bound(ns as usize), ns);
        }
        // First log-linear octave: [8,16) in unit-width sub-buckets.
        assert_eq!(bucket_of(8), 8);
        assert_eq!(bucket_of(15), 15);
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // Monotone, and each value is within its bucket's bounds with
        // log-linear relative error (bound/ns < 1 + 1/SUBS for ns >= SUBS).
        let mut prev = 0usize;
        for ns in [0u64, 1, 7, 8, 100, 1000, 123_456_789, 1 << 40, u64::MAX] {
            let b = bucket_of(ns);
            assert!(b >= prev, "{ns}");
            prev = b;
            let hi = bucket_bound(b);
            assert!(ns <= hi, "{ns}");
            if b > 0 {
                assert!(ns > bucket_bound(b - 1), "{ns}");
            }
            if (SUBS..1 << 62).contains(&ns) {
                assert!(hi as f64 / ns as f64 <= 1.0 + 1.0 / SUBS as f64, "{ns}");
            }
        }
    }

    #[test]
    fn local_histogram_scaled_counts_tuples() {
        let mut h = LocalHistogram::new();
        h.record_scaled(6400, 64);
        h.record_scaled(100, 1);
        assert_eq!(h.count, 65);
        assert_eq!(h.sum, 6500);
        let shared = Histogram::new();
        shared.publish(&h);
        let snap = shared.snapshot();
        assert_eq!(snap.count, 65);
        assert_eq!(snap.sum_ns, 6500);
        // 6400/64 = 100 → both land in the same bucket.
        assert_eq!(snap.buckets.len(), 1);
        assert_eq!(snap.buckets[0].1, 65);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record_ns(100);
        }
        for _ in 0..10 {
            h.record_ns(100_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert!(s.quantile_ns(0.5) < 256, "{}", s.quantile_ns(0.5));
        assert!(s.quantile_ns(0.99) >= 100_000);
        assert_eq!(s.mean_ns(), (90 * 100 + 10 * 100_000) / 100);
    }

    #[test]
    fn trace_ring_bounded_drop_oldest() {
        let ring = TraceRing::new(3);
        for w in 0..5u64 {
            ring.record(TraceEvent {
                t_ns: w,
                task: 0,
                kind: TraceKind::WindowClose,
                window: w,
                dur_ns: 0,
            });
        }
        let evs = ring.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].window, 2);
        assert_eq!(evs[2].window, 4);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn registry_snapshot_and_named_instruments() {
        let mut reg = MetricsRegistry::new(MetricsConfig {
            enabled: true,
            trace_capacity: 16,
        });
        let a = reg.register("worker", 0);
        let b = reg.register("worker", 1);
        a.received.store(10);
        b.received.store(20);
        let c = a.counter("join_pairs");
        c.add(7);
        // Same name → same instrument.
        assert_eq!(a.counter("join_pairs").get(), 7);
        let snaps = reg.snapshot_tasks();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].counter("received"), 10);
        assert_eq!(snaps[1].counter("received"), 20);
        assert_eq!(snaps[0].counter("join_pairs"), 7);
        assert_eq!(snaps[1].counter("join_pairs"), 0);
        assert!(snaps[0].histogram("handle_ns").is_some());
    }

    #[test]
    fn jsonl_lines_are_parseable_shape() {
        let mut reg = MetricsRegistry::new(MetricsConfig {
            enabled: true,
            trace_capacity: 16,
        });
        let a = reg.register("joiner", 0);
        a.received.store(5);
        a.handle_ns.record_ns(1000);
        a.trace(TraceKind::Probe, 0, Duration::from_nanos(42));
        let finals = reg.snapshot_tasks();
        let windows = vec![WindowSnapshot {
            window: 0,
            tasks: reg.snapshot_tasks(),
        }];
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &windows, &finals, &reg.trace().events()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.trim_end().lines().collect();
        assert_eq!(lines.len(), 3); // 1 window line + 1 final + 1 trace
        assert!(lines[0].contains("\"window\":0"));
        assert!(lines[0].contains("\"received\":5"));
        assert!(lines[0].contains("\"handle_ns\""));
        assert!(lines[1].contains("\"window\":\"final\""));
        assert!(lines[2].contains("\"kind\":\"probe\""));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn summary_table_lists_components() {
        let mut reg = MetricsRegistry::new(MetricsConfig {
            enabled: true,
            trace_capacity: 16,
        });
        reg.register("reader", 0).emitted.store(100);
        reg.register("joiner", 0).received.store(60);
        reg.register("joiner", 1).received.store(40);
        let table = summary_table(&reg.snapshot_tasks());
        assert!(table.contains("reader"));
        assert!(table.contains("joiner"));
        assert!(table.contains("100"));
    }
}
