//! Large randomized cross-checks: all join strategies (top-down FPTreeJoin
//! with and without the fast path, header-chain probing, NLJ, HBJ, sliding
//! panes) must produce identical results on sizeable mixed batches.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssj_join::{fpjoin, hbj, nlj, probe_via_header, FpTree, JoinAlgo, SlidingJoiner};
use ssj_json::{Dictionary, DocId, Document, Scalar};

/// A mixed batch: log-like docs with hubs, conflicts, and unique tails.
fn batch(dict: &Dictionary, n: usize, seed: u64) -> Vec<Document> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u64)
        .map(|i| {
            let mut pairs = vec![dict.intern("sev", Scalar::Int(rng.gen_range(0..3)))];
            if rng.gen_bool(0.8) {
                pairs.push(dict.intern("user", Scalar::Int(rng.gen_range(0..12))));
            }
            if rng.gen_bool(0.5) {
                pairs.push(dict.intern("grp", Scalar::Int(rng.gen_range(0..6))));
            }
            if rng.gen_bool(0.3) {
                pairs.push(dict.intern("tag", Scalar::Int(i as i64))); // unique
            }
            if rng.gen_bool(0.4) {
                pairs.push(dict.intern("loc", Scalar::Int(rng.gen_range(0..4))));
            }
            Document::from_pairs(DocId(i), pairs)
        })
        .collect()
}

#[test]
fn five_hundred_docs_all_strategies_agree() {
    let dict = Dictionary::new();
    let docs = batch(&dict, 500, 99);

    let mut reference = nlj::join_batch(&docs);
    reference.sort();

    // Batch APIs.
    let mut via_fp = fpjoin::join_batch(&docs).1;
    via_fp.sort();
    assert_eq!(via_fp, reference, "incremental FPTreeJoin");

    let mut via_prebuilt = fpjoin::join_batch_prebuilt(&docs).1;
    via_prebuilt.sort();
    assert_eq!(via_prebuilt, reference, "prebuilt FPTreeJoin");

    let mut via_hbj = hbj::join_batch(&docs);
    via_hbj.sort();
    assert_eq!(via_hbj, reference, "HBJ");

    // Probe APIs over the full tree.
    let tree = FpTree::build(&docs);
    let mut via_probe = Vec::new();
    let mut via_header = Vec::new();
    let mut via_slow = Vec::new();
    for d in &docs {
        for p in fpjoin::probe(&tree, d) {
            if p < d.id() {
                via_probe.push((p, d.id()));
            }
        }
        for p in probe_via_header(&tree, d) {
            if p < d.id() {
                via_header.push((p, d.id()));
            }
        }
        for p in fpjoin::probe_with_stats(&tree, d, false).0 {
            if p < d.id() {
                via_slow.push((p, d.id()));
            }
        }
    }
    via_probe.sort();
    via_header.sort();
    via_slow.sort();
    assert_eq!(via_probe, reference, "fast-path probe");
    assert_eq!(via_header, reference, "header-chain probe");
    assert_eq!(via_slow, reference, "no-fast-path probe");

    // Sliding window with a single giant pane == tumbling.
    let mut sliding = SlidingJoiner::new(ssj_join::WindowSpec::sliding(10_000, 1));
    let mut via_sliding = Vec::new();
    for d in &docs {
        for p in sliding.insert_and_probe(d.clone()) {
            via_sliding.push((p.min(d.id()), p.max(d.id())));
        }
    }
    via_sliding.sort();
    assert_eq!(via_sliding, reference, "sliding single pane");

    // Sanity: the batch actually exercises the algorithms.
    assert!(reference.len() > 1_000, "only {} pairs", reference.len());
}

#[test]
fn repeated_seeds_are_deterministic() {
    let d1 = Dictionary::new();
    let d2 = Dictionary::new();
    let a = batch(&d1, 200, 7);
    let b = batch(&d2, 200, 7);
    let mut ra = fpjoin::join_batch(&a).1;
    let mut rb = fpjoin::join_batch(&b).1;
    ra.sort();
    rb.sort();
    assert_eq!(ra, rb);
}

#[test]
fn timings_report_consistent_counts_at_scale() {
    let dict = Dictionary::new();
    let docs = batch(&dict, 400, 3);
    let expected = nlj::join_batch(&docs).len();
    for algo in JoinAlgo::all() {
        let t = ssj_join::split_timings(algo, &docs);
        assert_eq!(t.pairs, expected, "{}", algo.name());
    }
}
