//! Nested Loop Join (NLJ) — the first baseline of §VII-A.
//!
//! The textbook natural join over schema-free documents: test every pair of
//! documents with the merge-scan compatibility check. Quadratic in the window
//! size, but with no build cost and no memory beyond the input — the paper's
//! Fig. 11 shows it beating HBJ on highly interconnected data.

use ssj_json::{DocId, Document};

/// Join a whole batch; returns each joinable pair once as `(earlier, later)`.
pub fn join_batch(docs: &[Document]) -> Vec<(DocId, DocId)> {
    let mut out = Vec::new();
    for (i, a) in docs.iter().enumerate() {
        for b in &docs[i + 1..] {
            if a.joins_with(b) {
                out.push(order_pair(a.id(), b.id()));
            }
        }
    }
    out
}

/// Find all partners of `probe` among `stored` (streaming-style probe).
pub fn probe(stored: &[Document], probe_doc: &Document) -> Vec<DocId> {
    let mut out = Vec::new();
    probe_into(stored, probe_doc, &mut out);
    out
}

/// As [`probe`], writing partners into a caller-provided buffer (cleared
/// first) so repeated probes reuse one allocation.
pub fn probe_into(stored: &[Document], probe_doc: &Document, out: &mut Vec<DocId>) {
    out.clear();
    out.extend(
        stored
            .iter()
            .filter(|d| d.id() != probe_doc.id() && d.joins_with(probe_doc))
            .map(|d| d.id()),
    );
}

#[inline]
fn order_pair(a: DocId, b: DocId) -> (DocId, DocId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{Dictionary, DocId, Document};

    fn docs(dict: &Dictionary, srcs: &[&str]) -> Vec<Document> {
        srcs.iter()
            .enumerate()
            .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, dict).unwrap())
            .collect()
    }

    #[test]
    fn batch_pairs_ordered_and_unique() {
        let dict = Dictionary::new();
        let ds = docs(
            &dict,
            &[r#"{"a":1,"b":2}"#, r#"{"a":1,"c":3}"#, r#"{"b":2,"c":3}"#],
        );
        let mut pairs = join_batch(&ds);
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                (DocId(1), DocId(2)),
                (DocId(1), DocId(3)),
                (DocId(2), DocId(3))
            ]
        );
    }

    #[test]
    fn conflicting_docs_excluded() {
        let dict = Dictionary::new();
        let ds = docs(&dict, &[r#"{"a":1,"b":2}"#, r#"{"a":1,"b":3}"#]);
        assert!(join_batch(&ds).is_empty());
    }

    #[test]
    fn probe_streaming() {
        let dict = Dictionary::new();
        let ds = docs(&dict, &[r#"{"a":1}"#, r#"{"a":2}"#, r#"{"a":1,"x":9}"#]);
        let partners = probe(&ds[..2], &ds[2]);
        assert_eq!(partners, vec![DocId(1)]);
    }

    #[test]
    fn empty_batch() {
        assert!(join_batch(&[]).is_empty());
    }
}
