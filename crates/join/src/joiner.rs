//! A common interface over the three local join algorithms.
//!
//! The Joiner component of the topology and the Fig. 11 harness select an
//! algorithm at run time; [`JoinAlgo`] names them and [`join_batch`]
//! dispatches. [`split_timings`] measures the FP-tree's two phases
//! ("Creation" and "Join" in Fig. 11a/b) separately.

use crate::{fpjoin, hbj, nlj};
use ssj_json::{DocId, Document};
use std::time::{Duration, Instant};

/// The local natural-join algorithms evaluated in §VII-E-5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinAlgo {
    /// The paper's FP-tree–based join (FPJ).
    FpTree,
    /// Nested Loop Join baseline.
    Nlj,
    /// Hash-Based Join baseline (inverted index over pairs).
    Hbj,
}

impl JoinAlgo {
    /// Short name used in harness output ("FPJ", "NLJ", "HBJ").
    pub fn name(self) -> &'static str {
        match self {
            JoinAlgo::FpTree => "FPJ",
            JoinAlgo::Nlj => "NLJ",
            JoinAlgo::Hbj => "HBJ",
        }
    }

    /// All algorithms, in the paper's presentation order.
    pub fn all() -> [JoinAlgo; 3] {
        [JoinAlgo::FpTree, JoinAlgo::Nlj, JoinAlgo::Hbj]
    }
}

impl std::str::FromStr for JoinAlgo {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fpj" | "fptree" | "fp" => Ok(JoinAlgo::FpTree),
            "nlj" | "nested" => Ok(JoinAlgo::Nlj),
            "hbj" | "hash" => Ok(JoinAlgo::Hbj),
            other => Err(format!("unknown join algorithm '{other}'")),
        }
    }
}

/// Join one window's documents with the chosen algorithm; every joinable
/// pair appears exactly once as `(earlier, later)`.
pub fn join_batch(algo: JoinAlgo, docs: &[Document]) -> Vec<(DocId, DocId)> {
    BatchJoiner::new().join_batch(algo, docs)
}

/// Per-worker batch-join state: the probe scratch and partner buffer live
/// here so consecutive windows handled by one worker (e.g. a Joiner bolt)
/// reuse the same allocations instead of re-growing them every window.
#[derive(Debug, Default)]
pub struct BatchJoiner {
    scratch: fpjoin::ProbeScratch,
    partners: Vec<DocId>,
}

impl BatchJoiner {
    /// Fresh state; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// As [`join_batch`], reusing this worker's scratch buffers.
    pub fn join_batch(&mut self, algo: JoinAlgo, docs: &[Document]) -> Vec<(DocId, DocId)> {
        match algo {
            JoinAlgo::FpTree => {
                let order = crate::order::AttrOrder::compute(docs);
                let mut tree = crate::fptree::FpTree::new(order);
                let mut pairs = Vec::new();
                for doc in docs {
                    fpjoin::probe_into(&tree, doc, true, &mut self.scratch, &mut self.partners);
                    // Probe precedes insert, so every partner is earlier.
                    pairs.extend(self.partners.iter().map(|&p| (p, doc.id())));
                    tree.insert(doc);
                }
                pairs
            }
            JoinAlgo::Nlj => nlj::join_batch(docs),
            JoinAlgo::Hbj => hbj::join_batch(docs),
        }
    }
}

/// Timing breakdown of a batch join.
#[derive(Debug, Clone, Copy)]
pub struct JoinTimings {
    /// Index/tree construction time (zero for NLJ).
    pub creation: Duration,
    /// Time spent producing join results.
    pub join: Duration,
    /// Number of result pairs.
    pub pairs: usize,
}

/// Run `algo` over `docs` with the creation/join phases timed separately,
/// matching the stacked bars of Fig. 11a/b.
pub fn split_timings(algo: JoinAlgo, docs: &[Document]) -> JoinTimings {
    match algo {
        JoinAlgo::FpTree => {
            let t0 = Instant::now();
            let tree = crate::fptree::FpTree::build(docs);
            let creation = t0.elapsed();
            let t1 = Instant::now();
            let mut pairs = 0usize;
            let mut scratch = fpjoin::ProbeScratch::new();
            let mut partners = Vec::new();
            for doc in docs {
                fpjoin::probe_into(&tree, doc, true, &mut scratch, &mut partners);
                pairs += partners.iter().filter(|&&p| p < doc.id()).count();
            }
            JoinTimings {
                creation,
                join: t1.elapsed(),
                pairs,
            }
        }
        JoinAlgo::Nlj => {
            let t1 = Instant::now();
            let pairs = nlj::join_batch(docs).len();
            JoinTimings {
                creation: Duration::ZERO,
                join: t1.elapsed(),
                pairs,
            }
        }
        JoinAlgo::Hbj => {
            let t0 = Instant::now();
            let mut idx = hbj::HashIndex::build(docs.iter().cloned());
            let creation = t0.elapsed();
            let t1 = Instant::now();
            let mut pairs = 0usize;
            let mut partners = Vec::new();
            for doc in docs {
                idx.probe_into(doc, &mut partners);
                pairs += partners.iter().filter(|&&p| p < doc.id()).count();
            }
            JoinTimings {
                creation,
                join: t1.elapsed(),
                pairs,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{Dictionary, DocId, Document};

    fn sample(dict: &Dictionary) -> Vec<Document> {
        [
            r#"{"u":"A","s":"W"}"#,
            r#"{"u":"A","s":"W","m":2}"#,
            r#"{"u":"A","s":"E"}"#,
            r#"{"ip":"x","s":"W"}"#,
            r#"{"u":"B","s":"C","m":1}"#,
            r#"{"u":"B","s":"C"}"#,
            r#"{"u":"B","s":"W"}"#,
        ]
        .iter()
        .enumerate()
        .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, dict).unwrap())
        .collect()
    }

    #[test]
    fn all_algorithms_agree() {
        let dict = Dictionary::new();
        let docs = sample(&dict);
        let mut results: Vec<Vec<(DocId, DocId)>> = JoinAlgo::all()
            .iter()
            .map(|&a| {
                let mut r = join_batch(a, &docs);
                r.sort();
                r
            })
            .collect();
        let reference = results.pop().unwrap();
        for r in results {
            assert_eq!(r, reference);
        }
    }

    #[test]
    fn split_timings_counts_match() {
        let dict = Dictionary::new();
        let docs = sample(&dict);
        let expected = join_batch(JoinAlgo::Nlj, &docs).len();
        for algo in JoinAlgo::all() {
            let t = split_timings(algo, &docs);
            assert_eq!(t.pairs, expected, "{}", algo.name());
        }
    }

    #[test]
    fn algo_from_str() {
        assert_eq!("fpj".parse::<JoinAlgo>().unwrap(), JoinAlgo::FpTree);
        assert_eq!("NLJ".parse::<JoinAlgo>().unwrap(), JoinAlgo::Nlj);
        assert_eq!("hash".parse::<JoinAlgo>().unwrap(), JoinAlgo::Hbj);
        assert!("quantum".parse::<JoinAlgo>().is_err());
    }
}
