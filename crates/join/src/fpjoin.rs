//! The FPTreeJoin algorithm (§V-B, Algorithms 2 and 3).
//!
//! Given a probe document and an [`FpTree`], produce every stored document
//! that belongs to the natural join result with the probe:
//!
//! 1. **Fast path** (Algorithm 2): the first `num` levels of the tree hold
//!    only *ubiquitous* attributes (present in every stored document). The
//!    probe's value for each of them selects exactly one child per level —
//!    every sibling branch conflicts on that attribute and is pruned
//!    wholesale.
//! 2. **Traversal** (Algorithm 3): below the ubiquitous levels, a DFS visits
//!    children, pruning a whole subtree when the child's attribute exists in
//!    the probe with a *different* value (a conflict), and counting shared
//!    pairs along the path. Documents at a node are reported only when the
//!    path shares at least one pair with the probe — the correction the
//!    paper's remark after Algorithm 3 requires.
//!
//! # Zero-allocation probing
//!
//! The hot entry point is [`probe_into`]: it takes a reusable
//! [`ProbeScratch`] (DFS stack + an epoch-stamped dense attribute→value
//! table replacing per-node binary searches) and a caller-provided output
//! vector, so a steady-state probe performs no heap allocation once the
//! scratch has warmed up. [`probe`] and [`probe_with_stats`] are thin
//! allocating conveniences over it.

use crate::fptree::{FpTree, NodeId};
use ssj_json::{AttrId, AvpId, DocId, Document};

/// Statistics of one probe — used by tests and the ablation benches.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProbeStats {
    /// Nodes visited during the DFS (excluding fast-path hops).
    pub visited: u64,
    /// Subtrees pruned due to a value conflict.
    pub pruned: u64,
    /// Levels skipped through the ubiquitous-attribute fast path.
    pub fast_levels: u64,
}

/// Reusable probe working memory. Create once per worker (or per thread)
/// and pass to every [`probe_into`] call; all growth is amortised, so
/// steady-state probes allocate nothing.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    /// Explicit DFS stack of `(node, shared-pair count)` frames.
    stack: Vec<(NodeId, u32)>,
    /// `avp[attr.index()]` = the probe's value id for that attribute, valid
    /// only when `stamp[attr.index()] == epoch` (stamping makes clearing
    /// the table O(probe pairs), not O(attribute universe)).
    avp: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl ProbeScratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Load the probe document's pairs into the dense attr→avp table.
    fn load(&mut self, probe_doc: &Document) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch counter wrapped: old stamps could alias; reset once.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        for pair in probe_doc.pairs() {
            let i = pair.attr.index();
            if i >= self.avp.len() {
                self.avp.resize(i + 1, 0);
                self.stamp.resize(i + 1, 0);
            }
            self.avp[i] = pair.avp.0;
            self.stamp[i] = self.epoch;
        }
    }

    /// The probe's value id for `attr`, if the probe carries the attribute.
    #[inline]
    fn probe_avp(&self, attr: AttrId) -> Option<u32> {
        let i = attr.index();
        (i < self.stamp.len() && self.stamp[i] == self.epoch).then(|| self.avp[i])
    }
}

/// Find all join partners of `probe` in `tree`, using the fast path.
pub fn probe(tree: &FpTree, probe_doc: &Document) -> Vec<DocId> {
    let mut scratch = ProbeScratch::new();
    let mut out = Vec::new();
    probe_into(tree, probe_doc, true, &mut scratch, &mut out);
    out
}

/// As [`probe`], but optionally disabling the fast path (ablation) and
/// reporting traversal statistics.
pub fn probe_with_stats(
    tree: &FpTree,
    probe_doc: &Document,
    fast_path: bool,
) -> (Vec<DocId>, ProbeStats) {
    let mut scratch = ProbeScratch::new();
    let mut out = Vec::new();
    let stats = probe_into(tree, probe_doc, fast_path, &mut scratch, &mut out);
    (out, stats)
}

/// Find all join partners of `probe_doc` in `tree`, writing them into `out`
/// (cleared first). `scratch` carries the DFS stack and conflict table
/// across calls; reusing both makes the steady-state probe allocation-free.
pub fn probe_into(
    tree: &FpTree,
    probe_doc: &Document,
    fast_path: bool,
    scratch: &mut ProbeScratch,
    out: &mut Vec<DocId>,
) -> ProbeStats {
    out.clear();
    scratch.load(probe_doc);
    let mut stats = ProbeStats::default();
    let order = tree.order();
    let num = order.ubiquitous();
    let mut start = NodeId::ROOT;
    let mut shared = 0u32;

    if fast_path && num > 0 {
        // The first `num` ranks of the order are exactly the ubiquitous
        // attributes, so the probe's pair for each level is one table load
        // away — no reordering needed. The fast path applies only while the
        // probe carries every ubiquitous attribute; on the first miss we
        // fall back to the general traversal from wherever we got to
        // (sound: levels walked so far matched exactly).
        for &attr in order.attrs().iter().take(num) {
            let Some(avp) = scratch.probe_avp(attr) else {
                // Probe lacks this ubiquitous attribute: no conflict is
                // possible on it, so all children below `start` remain
                // candidates — handled by the general traversal.
                break;
            };
            match tree.child(start, AvpId(avp)) {
                Some(child) => {
                    start = child;
                    shared += 1;
                    stats.fast_levels += 1;
                    // Documents ending inside the ubiquitous prefix match
                    // the probe exactly on every attribute they carry.
                    out.extend_from_slice(tree.docs(start));
                }
                None => {
                    // Every stored document carries this attribute with
                    // some other value — all conflict with the probe.
                    out.retain(|&d| d != probe_doc.id());
                    return stats;
                }
            }
        }
    }

    traverse(tree, start, shared, scratch, out, &mut stats);
    out.retain(|&d| d != probe_doc.id());
    stats
}

/// Algorithm 3 with the shared-pair counter of the paper's remark, run as
/// an explicit-stack DFS over the scratch buffer (no recursion, no per-call
/// allocation).
fn traverse(
    tree: &FpTree,
    start: NodeId,
    shared: u32,
    scratch: &mut ProbeScratch,
    out: &mut Vec<DocId>,
    stats: &mut ProbeStats,
) {
    debug_assert!(scratch.stack.is_empty());
    scratch.stack.push((start, shared));
    while let Some((node, shared)) = scratch.stack.pop() {
        let mut child_it = tree.first_child(node);
        while let Some(child) = child_it {
            child_it = tree.next_sibling(child);
            stats.visited += 1;
            let label = tree.pair(child);
            let new_shared = match scratch.probe_avp(label.attr) {
                Some(avp) if avp == label.avp.0 => shared + 1,
                Some(_) => {
                    // Conflicting value: every document under `child` carries
                    // the conflicting pair — prune the subtree (Alg. 3, l. 5-7).
                    stats.pruned += 1;
                    continue;
                }
                None => shared,
            };
            if new_shared > 0 {
                out.extend_from_slice(tree.docs(child));
            }
            scratch.stack.push((child, new_shared));
        }
    }
}

/// Join an entire batch the way a Joiner does for one tumbling window:
/// probe each document against the documents before it, then insert it.
/// Each joinable pair is reported exactly once, as `(earlier, later)`.
pub fn join_batch(docs: &[Document]) -> (FpTree, Vec<(DocId, DocId)>) {
    let order = crate::order::AttrOrder::compute(docs);
    let mut tree = FpTree::new(order);
    let mut scratch = ProbeScratch::new();
    let mut partners = Vec::new();
    let mut pairs = Vec::new();
    for doc in docs {
        probe_into(&tree, doc, true, &mut scratch, &mut partners);
        pairs.extend(partners.iter().map(|&p| (p, doc.id())));
        tree.insert(doc);
    }
    tree.seal();
    (tree, pairs)
}

/// Split-phase batch join used by the Fig. 11 harness: build the tree first
/// ("creation"), then probe every document ("join"), keeping only pairs
/// `(a, b)` with `a < b` so each result appears once.
pub fn join_batch_prebuilt(docs: &[Document]) -> (FpTree, Vec<(DocId, DocId)>) {
    let tree = FpTree::build(docs);
    let mut scratch = ProbeScratch::new();
    let mut partners = Vec::new();
    let mut pairs = Vec::new();
    for doc in docs {
        probe_into(&tree, doc, true, &mut scratch, &mut partners);
        for &partner in &partners {
            if partner < doc.id() {
                pairs.push((partner, doc.id()));
            }
        }
    }
    (tree, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{Dictionary, DocId, Document};

    fn docs(dict: &Dictionary, srcs: &[&str]) -> Vec<Document> {
        srcs.iter()
            .enumerate()
            .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, dict).unwrap())
            .collect()
    }

    fn table1(dict: &Dictionary) -> Vec<Document> {
        docs(
            dict,
            &[
                r#"{"a":3,"b":7,"c":1}"#,
                r#"{"a":3,"b":8}"#,
                r#"{"a":3,"b":7}"#,
                r#"{"b":8,"c":2}"#,
            ],
        )
    }

    /// Fig. 5 of the paper: probing with d1 prunes the b:8 branch at the
    /// first level and reports only d3.
    #[test]
    fn paper_fig5_probe_d1() {
        let dict = Dictionary::new();
        let ds = table1(&dict);
        let tree = FpTree::build(&ds);
        let (found, stats) = probe_with_stats(&tree, &ds[0], true);
        assert_eq!(found, vec![DocId(3)]);
        // One ubiquitous level (b) navigated via the fast path...
        assert_eq!(stats.fast_levels, 1);
        // ...so the b:8 subtree (3 nodes) was never visited.
        assert!(stats.visited <= 2, "visited {} nodes", stats.visited);
    }

    #[test]
    fn fast_path_and_full_traversal_agree() {
        let dict = Dictionary::new();
        let ds = table1(&dict);
        let tree = FpTree::build(&ds);
        for d in &ds {
            let (mut fast, _) = probe_with_stats(&tree, d, true);
            let (mut slow, _) = probe_with_stats(&tree, d, false);
            fast.sort();
            slow.sort();
            assert_eq!(fast, slow, "mismatch probing {}", d.id());
        }
    }

    #[test]
    fn probe_matches_pairwise_definition() {
        let dict = Dictionary::new();
        let ds = docs(
            &dict,
            &[
                r#"{"u":"A","s":"W"}"#,
                r#"{"u":"A","s":"W","m":2}"#,
                r#"{"u":"A","s":"E"}"#,
                r#"{"ip":"10.0.0.1","s":"W"}"#,
                r#"{"u":"B","s":"C","m":1}"#,
                r#"{"u":"B","s":"C"}"#,
                r#"{"u":"B","s":"W"}"#,
            ],
        );
        let tree = FpTree::build(&ds);
        for d in &ds {
            let mut got = probe(&tree, d);
            got.sort();
            let mut want: Vec<DocId> = ds
                .iter()
                .filter(|o| o.id() != d.id() && o.joins_with(d))
                .map(|o| o.id())
                .collect();
            want.sort();
            assert_eq!(got, want, "probe {}", d.id());
        }
    }

    #[test]
    fn docs_sharing_nothing_are_not_reported() {
        let dict = Dictionary::new();
        let ds = docs(&dict, &[r#"{"a":1}"#, r#"{"b":2}"#]);
        let tree = FpTree::build(&ds);
        assert!(probe(&tree, &ds[0]).is_empty());
        assert!(probe(&tree, &ds[1]).is_empty());
    }

    #[test]
    fn probe_excludes_self() {
        let dict = Dictionary::new();
        let ds = table1(&dict);
        let tree = FpTree::build(&ds);
        for d in &ds {
            assert!(!probe(&tree, d).contains(&d.id()));
        }
    }

    #[test]
    fn duplicate_documents_join_each_other() {
        let dict = Dictionary::new();
        let ds = docs(&dict, &[r#"{"x":1}"#, r#"{"x":1}"#]);
        let tree = FpTree::build(&ds);
        assert_eq!(probe(&tree, &ds[0]), vec![DocId(2)]);
        assert_eq!(probe(&tree, &ds[1]), vec![DocId(1)]);
    }

    #[test]
    fn probe_lacking_ubiquitous_attribute_falls_back() {
        let dict = Dictionary::new();
        // b is ubiquitous in the batch; the late probe has no b at all.
        let ds = table1(&dict);
        let tree = FpTree::build(&ds);
        let late = Document::from_json(DocId(50), r#"{"a":3,"c":1}"#, &dict).unwrap();
        let (mut got, stats) = probe_with_stats(&tree, &late, true);
        got.sort();
        // Joinable with every document carrying a:3 or c:1 without conflict:
        // d1 {a3,b7,c1} shares a,c; d2 {a3,b8} shares a; d3 {a3,b7} shares a.
        assert_eq!(got, vec![DocId(1), DocId(2), DocId(3)]);
        assert_eq!(stats.fast_levels, 0, "fast path must not engage");
    }

    #[test]
    fn probe_with_conflicting_ubiquitous_value_returns_empty() {
        let dict = Dictionary::new();
        let ds = table1(&dict);
        let tree = FpTree::build(&ds);
        let probe_doc = Document::from_json(DocId(60), r#"{"b":99,"a":3}"#, &dict).unwrap();
        // b:99 exists nowhere: every stored doc carries b with another value.
        assert!(probe(&tree, &probe_doc).is_empty());
    }

    #[test]
    fn join_batch_reports_each_pair_once() {
        let dict = Dictionary::new();
        let ds = table1(&dict);
        let (_, mut pairs) = join_batch(&ds);
        pairs.sort();
        let mut dedup = pairs.clone();
        dedup.dedup();
        assert_eq!(pairs, dedup);
        for (a, b) in &pairs {
            assert!(a < b, "pair ({a},{b}) not ordered");
        }
    }

    #[test]
    fn incremental_and_prebuilt_agree() {
        let dict = Dictionary::new();
        let ds = docs(
            &dict,
            &[
                r#"{"u":"A","s":"W"}"#,
                r#"{"u":"A","s":"W","m":2}"#,
                r#"{"u":"A","s":"E"}"#,
                r#"{"ip":"x","s":"W"}"#,
                r#"{"u":"B","s":"C","m":1}"#,
            ],
        );
        let (_, mut inc) = join_batch(&ds);
        let (_, mut pre) = join_batch_prebuilt(&ds);
        inc.sort();
        pre.sort();
        assert_eq!(inc, pre);
    }

    /// One scratch reused across many probes (including epoch reuse after
    /// wraparound-adjacent states) must behave like a fresh one per probe.
    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        let dict = Dictionary::new();
        let ds = table1(&dict);
        let tree = FpTree::build(&ds);
        let mut scratch = ProbeScratch::new();
        scratch.epoch = u32::MAX - 2; // cross the wraparound reset path
        let mut out = Vec::new();
        for _ in 0..6 {
            for d in &ds {
                probe_into(&tree, d, true, &mut scratch, &mut out);
                let mut got = out.clone();
                got.sort();
                let mut want = probe(&tree, d);
                want.sort();
                assert_eq!(got, want, "probe {}", d.id());
            }
        }
    }

    #[test]
    fn deep_tree_with_many_ubiquitous_levels() {
        let dict = Dictionary::new();
        // Three Boolean-ish ubiquitous attributes → first 3 levels prunable.
        let mut srcs = Vec::new();
        for i in 0..16u32 {
            let bits = i % 8;
            let (b1, b2, b3) = (bits & 1, (bits >> 1) & 1, (bits >> 2) & 1);
            // The extra attribute is sparse (half tag, half note) so exactly
            // f1..f3 are ubiquitous; d_i and d_{i+8} share all three bits.
            let extra = if i < 8 {
                format!(r#""tag":"t{i}""#)
            } else {
                format!(r#""note":"n{i}""#)
            };
            srcs.push(format!(r#"{{"f1":{b1},"f2":{b2},"f3":{b3},{extra}}}"#));
        }
        let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
        let ds = docs(&dict, &refs);
        let tree = FpTree::build(&ds);
        assert_eq!(tree.order().ubiquitous(), 3);
        for d in &ds {
            let (got, stats) = probe_with_stats(&tree, d, true);
            assert_eq!(stats.fast_levels, 3);
            // Every other doc shares f1..f3 values only if identical bits;
            // tags are unique so partners differ only in tag attribute.
            let want: Vec<DocId> = ds
                .iter()
                .filter(|o| o.id() != d.id() && o.joins_with(d))
                .map(|o| o.id())
                .collect();
            let mut got = got;
            let mut want = want;
            got.sort();
            want.sort();
            assert_eq!(got, want);
        }
    }
}
