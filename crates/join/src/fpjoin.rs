//! The FPTreeJoin algorithm (§V-B, Algorithms 2 and 3).
//!
//! Given a probe document and an [`FpTree`], produce every stored document
//! that belongs to the natural join result with the probe:
//!
//! 1. **Fast path** (Algorithm 2): the first `num` levels of the tree hold
//!    only *ubiquitous* attributes (present in every stored document). The
//!    probe's value for each of them selects exactly one child per level —
//!    every sibling branch conflicts on that attribute and is pruned
//!    wholesale.
//! 2. **Traversal** (Algorithm 3): below the ubiquitous levels, a DFS visits
//!    children, pruning a whole subtree when the child's attribute exists in
//!    the probe with a *different* value (a conflict), and counting shared
//!    pairs along the path. Documents at a node are reported only when the
//!    path shares at least one pair with the probe — the correction the
//!    paper's remark after Algorithm 3 requires.

use crate::fptree::{FpTree, NodeId};
use ssj_json::{DocId, Document};

/// Statistics of one probe — used by tests and the ablation benches.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProbeStats {
    /// Nodes visited during the DFS (excluding fast-path hops).
    pub visited: u64,
    /// Subtrees pruned due to a value conflict.
    pub pruned: u64,
    /// Levels skipped through the ubiquitous-attribute fast path.
    pub fast_levels: u64,
}

/// Find all join partners of `probe` in `tree`, using the fast path.
pub fn probe(tree: &FpTree, probe_doc: &Document) -> Vec<DocId> {
    let mut out = Vec::new();
    let mut stats = ProbeStats::default();
    probe_into(tree, probe_doc, true, &mut out, &mut stats);
    out
}

/// As [`probe`], but optionally disabling the fast path (ablation) and
/// reporting traversal statistics.
pub fn probe_with_stats(
    tree: &FpTree,
    probe_doc: &Document,
    fast_path: bool,
) -> (Vec<DocId>, ProbeStats) {
    let mut out = Vec::new();
    let mut stats = ProbeStats::default();
    probe_into(tree, probe_doc, fast_path, &mut out, &mut stats);
    (out, stats)
}

fn probe_into(
    tree: &FpTree,
    probe_doc: &Document,
    fast_path: bool,
    out: &mut Vec<DocId>,
    stats: &mut ProbeStats,
) {
    let order = tree.order();
    let num = order.ubiquitous();
    let mut start = NodeId::ROOT;
    let mut shared = 0u32;

    if fast_path && num > 0 {
        // The first `num` ranks of the order are exactly the ubiquitous
        // attributes, so the probe's pair for each level is a binary search
        // away — no reordering needed. The fast path applies only while the
        // probe carries every ubiquitous attribute; on the first miss we
        // fall back to the general traversal from wherever we got to
        // (sound: levels walked so far matched exactly).
        for &attr in order.attrs().iter().take(num) {
            let Some(pair) = probe_doc.pair_for_attr(attr) else {
                // Probe lacks this ubiquitous attribute: no conflict is
                // possible on it, so all children below `start` remain
                // candidates — handled by the general traversal.
                break;
            };
            match tree.child(start, pair.avp) {
                Some(child) => {
                    start = child;
                    shared += 1;
                    stats.fast_levels += 1;
                    // Documents ending inside the ubiquitous prefix match
                    // the probe exactly on every attribute they carry.
                    out.extend_from_slice(tree.docs(start));
                }
                None => {
                    // Every stored document carries this attribute with
                    // some other value — all conflict with the probe.
                    out.retain(|&d| d != probe_doc.id());
                    return;
                }
            }
        }
    }

    traverse(tree, start, probe_doc, shared, out, stats);
    out.retain(|&d| d != probe_doc.id());
}

/// Algorithm 3 with the shared-pair counter of the paper's remark.
fn traverse(
    tree: &FpTree,
    node: NodeId,
    probe_doc: &Document,
    shared: u32,
    out: &mut Vec<DocId>,
    stats: &mut ProbeStats,
) {
    for child in tree.children(node) {
        stats.visited += 1;
        let label = tree.pair(child);
        let new_shared = match probe_doc.pair_for_attr(label.attr) {
            Some(p) if p.avp == label.avp => shared + 1,
            Some(_) => {
                // Conflicting value: every document under `child` carries the
                // conflicting pair — prune the whole subtree (Alg. 3, l. 5-7).
                stats.pruned += 1;
                continue;
            }
            None => shared,
        };
        if new_shared > 0 {
            out.extend_from_slice(tree.docs(child));
        }
        traverse(tree, child, probe_doc, new_shared, out, stats);
    }
}

/// Join an entire batch the way a Joiner does for one tumbling window:
/// probe each document against the documents before it, then insert it.
/// Each joinable pair is reported exactly once, as `(earlier, later)`.
pub fn join_batch(docs: &[Document]) -> (FpTree, Vec<(DocId, DocId)>) {
    let order = crate::order::AttrOrder::compute(docs.iter());
    let mut tree = FpTree::new(order);
    let mut pairs = Vec::new();
    for doc in docs {
        let partners = probe(&tree, doc);
        pairs.extend(partners.into_iter().map(|p| (p, doc.id())));
        tree.insert(doc);
    }
    (tree, pairs)
}

/// Split-phase batch join used by the Fig. 11 harness: build the tree first
/// ("creation"), then probe every document ("join"), keeping only pairs
/// `(a, b)` with `a < b` so each result appears once.
pub fn join_batch_prebuilt(docs: &[Document]) -> (FpTree, Vec<(DocId, DocId)>) {
    let tree = FpTree::build(docs.iter());
    let mut pairs = Vec::new();
    for doc in docs {
        for partner in probe(&tree, doc) {
            if partner < doc.id() {
                pairs.push((partner, doc.id()));
            }
        }
    }
    (tree, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{Dictionary, DocId, Document};

    fn docs(dict: &Dictionary, srcs: &[&str]) -> Vec<Document> {
        srcs.iter()
            .enumerate()
            .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, dict).unwrap())
            .collect()
    }

    fn table1(dict: &Dictionary) -> Vec<Document> {
        docs(
            dict,
            &[
                r#"{"a":3,"b":7,"c":1}"#,
                r#"{"a":3,"b":8}"#,
                r#"{"a":3,"b":7}"#,
                r#"{"b":8,"c":2}"#,
            ],
        )
    }

    /// Fig. 5 of the paper: probing with d1 prunes the b:8 branch at the
    /// first level and reports only d3.
    #[test]
    fn paper_fig5_probe_d1() {
        let dict = Dictionary::new();
        let ds = table1(&dict);
        let tree = FpTree::build(ds.iter());
        let (found, stats) = probe_with_stats(&tree, &ds[0], true);
        assert_eq!(found, vec![DocId(3)]);
        // One ubiquitous level (b) navigated via the fast path...
        assert_eq!(stats.fast_levels, 1);
        // ...so the b:8 subtree (3 nodes) was never visited.
        assert!(stats.visited <= 2, "visited {} nodes", stats.visited);
    }

    #[test]
    fn fast_path_and_full_traversal_agree() {
        let dict = Dictionary::new();
        let ds = table1(&dict);
        let tree = FpTree::build(ds.iter());
        for d in &ds {
            let (mut fast, _) = probe_with_stats(&tree, d, true);
            let (mut slow, _) = probe_with_stats(&tree, d, false);
            fast.sort();
            slow.sort();
            assert_eq!(fast, slow, "mismatch probing {}", d.id());
        }
    }

    #[test]
    fn probe_matches_pairwise_definition() {
        let dict = Dictionary::new();
        let ds = docs(
            &dict,
            &[
                r#"{"u":"A","s":"W"}"#,
                r#"{"u":"A","s":"W","m":2}"#,
                r#"{"u":"A","s":"E"}"#,
                r#"{"ip":"10.0.0.1","s":"W"}"#,
                r#"{"u":"B","s":"C","m":1}"#,
                r#"{"u":"B","s":"C"}"#,
                r#"{"u":"B","s":"W"}"#,
            ],
        );
        let tree = FpTree::build(ds.iter());
        for d in &ds {
            let mut got = probe(&tree, d);
            got.sort();
            let mut want: Vec<DocId> = ds
                .iter()
                .filter(|o| o.id() != d.id() && o.joins_with(d))
                .map(|o| o.id())
                .collect();
            want.sort();
            assert_eq!(got, want, "probe {}", d.id());
        }
    }

    #[test]
    fn docs_sharing_nothing_are_not_reported() {
        let dict = Dictionary::new();
        let ds = docs(&dict, &[r#"{"a":1}"#, r#"{"b":2}"#]);
        let tree = FpTree::build(ds.iter());
        assert!(probe(&tree, &ds[0]).is_empty());
        assert!(probe(&tree, &ds[1]).is_empty());
    }

    #[test]
    fn probe_excludes_self() {
        let dict = Dictionary::new();
        let ds = table1(&dict);
        let tree = FpTree::build(ds.iter());
        for d in &ds {
            assert!(!probe(&tree, d).contains(&d.id()));
        }
    }

    #[test]
    fn duplicate_documents_join_each_other() {
        let dict = Dictionary::new();
        let ds = docs(&dict, &[r#"{"x":1}"#, r#"{"x":1}"#]);
        let tree = FpTree::build(ds.iter());
        assert_eq!(probe(&tree, &ds[0]), vec![DocId(2)]);
        assert_eq!(probe(&tree, &ds[1]), vec![DocId(1)]);
    }

    #[test]
    fn probe_lacking_ubiquitous_attribute_falls_back() {
        let dict = Dictionary::new();
        // b is ubiquitous in the batch; the late probe has no b at all.
        let ds = table1(&dict);
        let tree = FpTree::build(ds.iter());
        let late = Document::from_json(DocId(50), r#"{"a":3,"c":1}"#, &dict).unwrap();
        let (mut got, stats) = probe_with_stats(&tree, &late, true);
        got.sort();
        // Joinable with every document carrying a:3 or c:1 without conflict:
        // d1 {a3,b7,c1} shares a,c; d2 {a3,b8} shares a; d3 {a3,b7} shares a.
        assert_eq!(got, vec![DocId(1), DocId(2), DocId(3)]);
        assert_eq!(stats.fast_levels, 0, "fast path must not engage");
    }

    #[test]
    fn probe_with_conflicting_ubiquitous_value_returns_empty() {
        let dict = Dictionary::new();
        let ds = table1(&dict);
        let tree = FpTree::build(ds.iter());
        let probe_doc =
            Document::from_json(DocId(60), r#"{"b":99,"a":3}"#, &dict).unwrap();
        // b:99 exists nowhere: every stored doc carries b with another value.
        assert!(probe(&tree, &probe_doc).is_empty());
    }

    #[test]
    fn join_batch_reports_each_pair_once() {
        let dict = Dictionary::new();
        let ds = table1(&dict);
        let (_, mut pairs) = join_batch(&ds);
        pairs.sort();
        let mut dedup = pairs.clone();
        dedup.dedup();
        assert_eq!(pairs, dedup);
        for (a, b) in &pairs {
            assert!(a < b, "pair ({a},{b}) not ordered");
        }
    }

    #[test]
    fn incremental_and_prebuilt_agree() {
        let dict = Dictionary::new();
        let ds = docs(
            &dict,
            &[
                r#"{"u":"A","s":"W"}"#,
                r#"{"u":"A","s":"W","m":2}"#,
                r#"{"u":"A","s":"E"}"#,
                r#"{"ip":"x","s":"W"}"#,
                r#"{"u":"B","s":"C","m":1}"#,
            ],
        );
        let (_, mut inc) = join_batch(&ds);
        let (_, mut pre) = join_batch_prebuilt(&ds);
        inc.sort();
        pre.sort();
        assert_eq!(inc, pre);
    }

    #[test]
    fn deep_tree_with_many_ubiquitous_levels() {
        let dict = Dictionary::new();
        // Three Boolean-ish ubiquitous attributes → first 3 levels prunable.
        let mut srcs = Vec::new();
        for i in 0..16u32 {
            let bits = i % 8;
            let (b1, b2, b3) = (bits & 1, (bits >> 1) & 1, (bits >> 2) & 1);
            // The extra attribute is sparse (half tag, half note) so exactly
            // f1..f3 are ubiquitous; d_i and d_{i+8} share all three bits.
            let extra = if i < 8 {
                format!(r#""tag":"t{i}""#)
            } else {
                format!(r#""note":"n{i}""#)
            };
            srcs.push(format!(r#"{{"f1":{b1},"f2":{b2},"f3":{b3},{extra}}}"#));
        }
        let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
        let ds = docs(&dict, &refs);
        let tree = FpTree::build(ds.iter());
        assert_eq!(tree.order().ubiquitous(), 3);
        for d in &ds {
            let (got, stats) = probe_with_stats(&tree, d, true);
            assert_eq!(stats.fast_levels, 3);
            // Every other doc shares f1..f3 values only if identical bits;
            // tags are unique so partners differ only in tag attribute.
            let want: Vec<DocId> = ds
                .iter()
                .filter(|o| o.id() != d.id() && o.joins_with(d))
                .map(|o| o.id())
                .collect();
            let mut got = got;
            let mut want = want;
            got.sort();
            want.sort();
            assert_eq!(got, want);
        }
    }
}
