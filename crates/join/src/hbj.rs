//! Hash-Based Join (HBJ) — the second baseline of §VII-A.
//!
//! An inverted index over individual attribute-value pairs: every document is
//! posted under each of its pairs, "essentially resulting in some sort of
//! inverted index over the contents of the documents" (§VII-A). Probing
//! gathers the posting lists of the probe's pairs (candidates sharing at
//! least one pair), deduplicates them with a stamp array, and verifies each
//! candidate with the exact merge-scan compatibility test.
//!
//! On highly interconnected data a few posting lists hold almost every
//! document, which is exactly the degenerate behaviour the paper observes on
//! its real-world dataset (Fig. 11c).

use ssj_json::{AvpId, DocId, Document, FxHashMap};

/// An inverted index over one window of documents.
#[derive(Debug, Default)]
pub struct HashIndex {
    postings: FxHashMap<AvpId, Vec<u32>>,
    docs: Vec<Document>,
    /// Probe-time dedup stamps, one per stored document.
    stamps: Vec<u32>,
    stamp: u32,
}

impl HashIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an index over a whole batch.
    pub fn build(docs: impl IntoIterator<Item = Document>) -> Self {
        let mut idx = Self::new();
        for d in docs {
            idx.insert(d);
        }
        idx
    }

    /// Insert one document.
    pub fn insert(&mut self, doc: Document) {
        let slot = self.docs.len() as u32;
        for pair in doc.pairs() {
            self.postings.entry(pair.avp).or_default().push(slot);
        }
        self.docs.push(doc);
        self.stamps.push(0);
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Length of the longest posting list — the bucket-skew probe used by
    /// the ablation bench to explain the NLJ/HBJ crossover of Fig. 11.
    pub fn max_posting_len(&self) -> usize {
        self.postings.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Average posting-list length.
    pub fn avg_posting_len(&self) -> f64 {
        if self.postings.is_empty() {
            return 0.0;
        }
        let total: usize = self.postings.values().map(Vec::len).sum();
        total as f64 / self.postings.len() as f64
    }

    /// Force the probe stamp counter close to wraparound (tests only).
    #[cfg(test)]
    fn set_stamp_for_test(&mut self, stamp: u32) {
        self.stamp = stamp;
        // Simulate stale marks from earlier epochs.
        self.stamps.fill(stamp);
    }

    /// All join partners of `probe_doc` among the stored documents.
    pub fn probe(&mut self, probe_doc: &Document) -> Vec<DocId> {
        let mut out = Vec::new();
        self.probe_into(probe_doc, &mut out);
        out
    }

    /// As [`probe`](HashIndex::probe), writing partners into a
    /// caller-provided buffer (cleared first) so steady-state probing does
    /// not allocate — the index's stamp array already handles dedup without
    /// per-probe scratch.
    pub fn probe_into(&mut self, probe_doc: &Document, out: &mut Vec<DocId>) {
        out.clear();
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Stamp counter wrapped: reset all marks once.
            self.stamps.fill(0);
            self.stamp = 1;
        }
        for pair in probe_doc.pairs() {
            let Some(list) = self.postings.get(&pair.avp) else {
                continue;
            };
            for &slot in list {
                let slot_usize = slot as usize;
                if self.stamps[slot_usize] == self.stamp {
                    continue; // candidate already examined for this probe
                }
                self.stamps[slot_usize] = self.stamp;
                let cand = &self.docs[slot_usize];
                if cand.id() != probe_doc.id() && cand.joins_with(probe_doc) {
                    out.push(cand.id());
                }
            }
        }
    }
}

/// Join a whole batch: probe each document against its predecessors, then
/// insert it. Returns each joinable pair once as `(earlier, later)`.
pub fn join_batch(docs: &[Document]) -> Vec<(DocId, DocId)> {
    let mut idx = HashIndex::new();
    let mut out = Vec::new();
    for doc in docs {
        for partner in idx.probe(doc) {
            out.push(if partner < doc.id() {
                (partner, doc.id())
            } else {
                (doc.id(), partner)
            });
        }
        idx.insert(doc.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{Dictionary, DocId, Document};

    fn docs(dict: &Dictionary, srcs: &[&str]) -> Vec<Document> {
        srcs.iter()
            .enumerate()
            .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, dict).unwrap())
            .collect()
    }

    #[test]
    fn agrees_with_nlj_on_small_batch() {
        let dict = Dictionary::new();
        let ds = docs(
            &dict,
            &[
                r#"{"u":"A","s":"W"}"#,
                r#"{"u":"A","s":"W","m":2}"#,
                r#"{"u":"A","s":"E"}"#,
                r#"{"ip":"x","s":"W"}"#,
                r#"{"u":"B","s":"C","m":1}"#,
                r#"{"u":"B","s":"C"}"#,
                r#"{"u":"B","s":"W"}"#,
            ],
        );
        let mut h = join_batch(&ds);
        let mut n = crate::nlj::join_batch(&ds);
        h.sort();
        n.sort();
        assert_eq!(h, n);
    }

    #[test]
    fn candidates_deduplicated() {
        let dict = Dictionary::new();
        // Two shared pairs → the candidate appears on two posting lists but
        // must be reported once.
        let ds = docs(&dict, &[r#"{"a":1,"b":2}"#, r#"{"a":1,"b":2,"c":3}"#]);
        let mut idx = HashIndex::new();
        idx.insert(ds[0].clone());
        let partners = idx.probe(&ds[1]);
        assert_eq!(partners, vec![DocId(1)]);
    }

    #[test]
    fn conflicting_candidates_verified_away() {
        let dict = Dictionary::new();
        let ds = docs(&dict, &[r#"{"a":1,"b":2}"#, r#"{"a":1,"b":9}"#]);
        assert!(join_batch(&ds).is_empty());
    }

    #[test]
    fn posting_statistics() {
        let dict = Dictionary::new();
        let ds = docs(&dict, &[r#"{"a":1}"#, r#"{"a":1}"#, r#"{"a":2}"#]);
        let idx = HashIndex::build(ds);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.max_posting_len(), 2);
        assert!(idx.avg_posting_len() > 1.0);
    }

    #[test]
    fn stamp_wraparound_stays_correct() {
        // After u32::MAX probes the stamp counter wraps; marks from the old
        // epoch must not suppress candidates of the new epoch.
        let dict = Dictionary::new();
        let ds = docs(&dict, &[r#"{"a":1,"b":2}"#, r#"{"a":1,"b":2,"c":3}"#]);
        let mut idx = HashIndex::new();
        idx.insert(ds[0].clone());
        idx.set_stamp_for_test(u32::MAX);
        // This probe wraps the counter to 0 → reset path → stamp becomes 1.
        let partners = idx.probe(&ds[1]);
        assert_eq!(partners, vec![DocId(1)]);
        // And the very next probe still deduplicates correctly.
        let partners = idx.probe(&ds[1]);
        assert_eq!(partners, vec![DocId(1)]);
    }

    #[test]
    fn empty_index_probe() {
        let dict = Dictionary::new();
        let ds = docs(&dict, &[r#"{"a":1}"#]);
        let mut idx = HashIndex::new();
        assert!(idx.probe(&ds[0]).is_empty());
    }
}
