//! The shared window specification: one type that config, builder, CLI and
//! the join layer all agree on.
//!
//! The paper evaluates count-based tumbling windows only; sliding windows are
//! its named open problem (§V-A). Here both are one enum: a tumbling window
//! is the 1-pane special case of a pane-chained sliding window, so every
//! consumer (local [`crate::SlidingJoiner`], the distributed runtime, the
//! CLI) can treat "window" uniformly and the runtime's punctuation becomes
//! pane-granular.

use std::fmt;

/// Count-based window shape.
///
/// Marked `#[non_exhaustive]`: construct via [`WindowSpec::tumbling`] /
/// [`WindowSpec::sliding`] and read via the accessors so future variants
/// (e.g. attribute-delimited panes) don't break downstream matches.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowSpec {
    /// Classic tumbling window of `docs` documents — equivalently a sliding
    /// window with a single pane.
    Tumbling {
        /// Documents per window.
        docs: usize,
    },
    /// Sliding window of `panes_per_window` chained panes of `pane_docs`
    /// documents each; the window slides by one pane at a time, so eviction
    /// cost is O(pane), never a window rebuild.
    Sliding {
        /// Documents per pane (the runtime's punctuation granularity).
        pane_docs: usize,
        /// Panes spanned by one window.
        panes_per_window: usize,
    },
}

/// Validation failure for a [`WindowSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowError {
    /// A tumbling window of zero documents.
    ZeroWindow,
    /// A sliding window with zero-document panes.
    ZeroPane,
    /// A sliding window of zero panes.
    ZeroPanes,
}

impl fmt::Display for WindowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowError::ZeroWindow => write!(f, "window must hold at least one document"),
            WindowError::ZeroPane => write!(f, "pane must hold at least one document"),
            WindowError::ZeroPanes => write!(f, "window must span at least one pane"),
        }
    }
}

impl std::error::Error for WindowError {}

impl WindowSpec {
    /// A tumbling window of `docs` documents.
    pub const fn tumbling(docs: usize) -> Self {
        WindowSpec::Tumbling { docs }
    }

    /// A sliding window of `panes_per_window` panes of `pane_docs` documents.
    pub const fn sliding(pane_docs: usize, panes_per_window: usize) -> Self {
        WindowSpec::Sliding {
            pane_docs,
            panes_per_window,
        }
    }

    /// The single validation rule shared by config, builder and CLI.
    pub fn validate(&self) -> Result<(), WindowError> {
        match *self {
            WindowSpec::Tumbling { docs } => {
                if docs == 0 {
                    return Err(WindowError::ZeroWindow);
                }
            }
            WindowSpec::Sliding {
                pane_docs,
                panes_per_window,
            } => {
                if pane_docs == 0 {
                    return Err(WindowError::ZeroPane);
                }
                if panes_per_window == 0 {
                    return Err(WindowError::ZeroPanes);
                }
            }
        }
        Ok(())
    }

    /// Documents per pane — the punctuation granularity of the runtime.
    /// For a tumbling window the whole window is one pane.
    pub fn pane_docs(&self) -> usize {
        match *self {
            WindowSpec::Tumbling { docs } => docs,
            WindowSpec::Sliding { pane_docs, .. } => pane_docs,
        }
    }

    /// Panes spanned by one window (1 for tumbling).
    pub fn panes_per_window(&self) -> usize {
        match *self {
            WindowSpec::Tumbling { .. } => 1,
            WindowSpec::Sliding {
                panes_per_window, ..
            } => panes_per_window,
        }
    }

    /// Total documents spanned by one full window.
    pub fn window_docs(&self) -> usize {
        self.pane_docs() * self.panes_per_window()
    }

    /// True for multi-pane sliding windows (a 1-pane sliding spec behaves
    /// identically to tumbling, but keeps its declared shape).
    pub fn is_sliding(&self) -> bool {
        matches!(self, WindowSpec::Sliding { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_zero_dimensions() {
        assert_eq!(
            WindowSpec::tumbling(0).validate(),
            Err(WindowError::ZeroWindow)
        );
        assert_eq!(
            WindowSpec::sliding(0, 4).validate(),
            Err(WindowError::ZeroPane)
        );
        assert_eq!(
            WindowSpec::sliding(10, 0).validate(),
            Err(WindowError::ZeroPanes)
        );
        assert!(WindowSpec::tumbling(1).validate().is_ok());
        assert!(WindowSpec::sliding(1, 1).validate().is_ok());
    }

    #[test]
    fn accessors_agree_with_shape() {
        let t = WindowSpec::tumbling(600);
        assert_eq!(t.pane_docs(), 600);
        assert_eq!(t.panes_per_window(), 1);
        assert_eq!(t.window_docs(), 600);
        assert!(!t.is_sliding());

        let s = WindowSpec::sliding(150, 4);
        assert_eq!(s.pane_docs(), 150);
        assert_eq!(s.panes_per_window(), 4);
        assert_eq!(s.window_docs(), 600);
        assert!(s.is_sliding());
    }

    #[test]
    fn errors_render() {
        assert!(!WindowError::ZeroWindow.to_string().is_empty());
        assert!(!WindowError::ZeroPane.to_string().is_empty());
        assert!(!WindowError::ZeroPanes.to_string().is_empty());
    }
}
