//! # ssj-join — local natural-join algorithms for schema-free documents
//!
//! The paper's core contribution at the Joiner nodes: an FP-tree–based join
//! ([`fpjoin`], §V) plus the two baselines it is evaluated against, the
//! Nested Loop Join ([`nlj`]) and the Hash-Based Join ([`hbj`]). The
//! [`sliding`] module extends the paper's tumbling windows to sliding
//! windows via chained FP-tree panes.
//!
//! ```
//! use ssj_json::{Dictionary, DocId, Document};
//! use ssj_join::{fptree::FpTree, fpjoin};
//!
//! let dict = Dictionary::new();
//! let docs: Vec<Document> = [
//!     r#"{"a":3,"b":7,"c":1}"#,
//!     r#"{"a":3,"b":8}"#,
//!     r#"{"a":3,"b":7}"#,
//!     r#"{"b":8,"c":2}"#,
//! ]
//! .iter()
//! .enumerate()
//! .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, &dict).unwrap())
//! .collect();
//!
//! let tree = FpTree::build(&docs);
//! // Fig. 5: the only join partner of d1 is d3.
//! assert_eq!(fpjoin::probe(&tree, &docs[0]), vec![DocId(3)]);
//! ```

#![warn(missing_docs)]

pub mod fpjoin;
pub mod fptree;
pub mod hbj;
pub mod header_probe;
pub mod joiner;
pub mod nlj;
pub mod order;
pub mod sliding;
pub mod tree_stats;
pub mod windowspec;

pub use fpjoin::{
    join_batch as fp_join_batch, probe as fp_probe, probe_into as fp_probe_into, ProbeScratch,
    ProbeStats,
};
pub use fptree::{FpTree, NodeId};
pub use header_probe::probe_via_header;
pub use joiner::{join_batch, split_timings, BatchJoiner, JoinAlgo, JoinTimings};
pub use order::AttrOrder;
pub use sliding::{IncrementalSlidingJoiner, SlidingJoiner};
pub use tree_stats::TreeStats;
pub use windowspec::{WindowError, WindowSpec};
