//! Header-table–driven probing: an alternative FPTreeJoin strategy.
//!
//! The FP-tree keeps the classic header table chaining all equally-labelled
//! nodes (§V-A). That enables a *candidate-driven* probe, dual to the
//! top-down traversal of Algorithm 2/3: for every attribute-value pair of
//! the probe document, walk its header chain; each chained node roots a
//! region of documents that share that pair. For each such node, verify the
//! path up to the root for conflicts, then walk the subtree below with the
//! same conflict pruning, collecting documents (a stamp set deduplicates
//! documents reachable from several of the probe's pairs).
//!
//! Trade-off: the top-down algorithm excels on deep trees with ubiquitous
//! attributes (it prunes whole sibling branches per level); the header probe
//! excels when the probe carries *rare* pairs whose chains are short — it
//! touches only the regions that can possibly match. Benchmarked against
//! each other in `ssj-bench`'s `fptree` bench.

use crate::fptree::{FpTree, NodeId};
use ssj_json::{DocId, Document, FxHashSet};

/// Find all join partners of `probe_doc` in `tree` via the header chains.
///
/// Produces exactly the same set as [`crate::fpjoin::probe`].
pub fn probe_via_header(tree: &FpTree, probe_doc: &Document) -> Vec<DocId> {
    let mut out = Vec::new();
    let mut seen_nodes: FxHashSet<NodeId> = FxHashSet::default();
    let mut seen_docs: FxHashSet<DocId> = FxHashSet::default();

    for pair in probe_doc.pairs() {
        let mut chain = tree.header_first(pair.avp);
        while let Some(node) = chain {
            chain = tree.next_same_label(node);
            if !seen_nodes.insert(node) {
                continue;
            }
            // Verify the path from this node up to the root: every ancestor
            // label must be non-conflicting with the probe. (The node's own
            // label is one of the probe's pairs, hence shared ≥ 1.)
            if !path_compatible(tree, node, probe_doc) {
                continue;
            }
            // Everything stored at or below `node` carries the shared pair;
            // walk down with conflict pruning.
            collect_below(
                tree,
                node,
                probe_doc,
                &mut seen_nodes,
                &mut seen_docs,
                &mut out,
            );
        }
    }
    out.retain(|&d| d != probe_doc.id());
    out
}

/// Check the root path above `node` for value conflicts with the probe.
fn path_compatible(tree: &FpTree, node: NodeId, probe_doc: &Document) -> bool {
    let mut cur = tree.parent(node);
    while cur != NodeId::ROOT {
        let label = tree.pair(cur);
        if let Some(p) = probe_doc.pair_for_attr(label.attr) {
            if p.avp != label.avp {
                return false;
            }
        }
        cur = tree.parent(cur);
    }
    true
}

/// DFS below a verified node, pruning conflicting subtrees and collecting
/// unseen documents. Marks visited nodes so overlapping regions reached
/// from different probe pairs are not re-walked.
fn collect_below(
    tree: &FpTree,
    node: NodeId,
    probe_doc: &Document,
    seen_nodes: &mut FxHashSet<NodeId>,
    seen_docs: &mut FxHashSet<DocId>,
    out: &mut Vec<DocId>,
) {
    for &doc in tree.docs(node) {
        if seen_docs.insert(doc) {
            out.push(doc);
        }
    }
    for child in tree.children(node) {
        let label = tree.pair(child);
        if let Some(p) = probe_doc.pair_for_attr(label.attr) {
            if p.avp != label.avp {
                continue; // conflicting subtree
            }
        }
        if !seen_nodes.insert(child) {
            continue; // region already walked via another probe pair
        }
        collect_below(tree, child, probe_doc, seen_nodes, seen_docs, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpjoin;
    use ssj_json::{Dictionary, DocId, Document};

    fn docs(dict: &Dictionary, srcs: &[&str]) -> Vec<Document> {
        srcs.iter()
            .enumerate()
            .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, dict).unwrap())
            .collect()
    }

    #[test]
    fn matches_topdown_on_table1() {
        let dict = Dictionary::new();
        let ds = docs(
            &dict,
            &[
                r#"{"a":3,"b":7,"c":1}"#,
                r#"{"a":3,"b":8}"#,
                r#"{"a":3,"b":7}"#,
                r#"{"b":8,"c":2}"#,
            ],
        );
        let tree = FpTree::build(&ds);
        for d in &ds {
            let mut via_header = probe_via_header(&tree, d);
            let mut topdown = fpjoin::probe(&tree, d);
            via_header.sort();
            topdown.sort();
            assert_eq!(via_header, topdown, "probe {}", d.id());
        }
    }

    #[test]
    fn matches_pairwise_oracle_on_mixed_batch() {
        let dict = Dictionary::new();
        let ds = docs(
            &dict,
            &[
                r#"{"u":"A","s":"W"}"#,
                r#"{"u":"A","s":"W","m":2}"#,
                r#"{"u":"A","s":"E"}"#,
                r#"{"ip":"x","s":"W"}"#,
                r#"{"u":"B","s":"C","m":1}"#,
                r#"{"u":"B","s":"C"}"#,
                r#"{"u":"B","s":"W"}"#,
                r#"{"z":9}"#,
            ],
        );
        let tree = FpTree::build(&ds);
        for d in &ds {
            let mut got = probe_via_header(&tree, d);
            got.sort();
            let mut want: Vec<DocId> = ds
                .iter()
                .filter(|o| o.id() != d.id() && o.joins_with(d))
                .map(|o| o.id())
                .collect();
            want.sort();
            assert_eq!(got, want, "probe {}", d.id());
        }
    }

    #[test]
    fn no_duplicates_when_probe_shares_many_pairs() {
        let dict = Dictionary::new();
        // Every pair of the stored doc matches the probe: the doc must be
        // reported exactly once despite being reachable via 3 chains.
        let ds = docs(&dict, &[r#"{"a":1,"b":2,"c":3}"#]);
        let tree = FpTree::build(&ds);
        let probe_doc =
            Document::from_json(DocId(50), r#"{"a":1,"b":2,"c":3,"d":4}"#, &dict).unwrap();
        assert_eq!(probe_via_header(&tree, &probe_doc), vec![DocId(1)]);
    }

    #[test]
    fn probe_with_unseen_pairs_only() {
        let dict = Dictionary::new();
        let ds = docs(&dict, &[r#"{"a":1}"#]);
        let tree = FpTree::build(&ds);
        let probe_doc = Document::from_json(DocId(9), r#"{"zz":7}"#, &dict).unwrap();
        assert!(probe_via_header(&tree, &probe_doc).is_empty());
    }

    #[test]
    fn excludes_self() {
        let dict = Dictionary::new();
        let ds = docs(&dict, &[r#"{"a":1}"#, r#"{"a":1}"#]);
        let tree = FpTree::build(&ds);
        assert_eq!(probe_via_header(&tree, &ds[0]), vec![DocId(2)]);
    }
}
