//! Structural statistics of an FP-tree — the compression and shape numbers
//! behind the paper's storage claims ("compactly storing the documents",
//! §V-A) and behind choosing a probe strategy (deep-narrow trees favour the
//! top-down fast path, shallow-wide ones the header chains).

use crate::fptree::{FpTree, NodeId};

/// Shape summary of one FP-tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Documents stored.
    pub docs: usize,
    /// Nodes excluding the root.
    pub nodes: usize,
    /// Total attribute-value pairs across all stored documents.
    pub pairs: usize,
    /// `pairs / nodes`: >1 means the prefix tree shares structure
    /// (the paper's compactness argument); 1.0 means no sharing at all.
    pub compression: f64,
    /// Maximum depth.
    pub max_depth: u32,
    /// Mean depth of the nodes where documents terminate.
    pub mean_doc_depth: f64,
    /// Number of ubiquitous attributes (the fast-path levels).
    pub ubiquitous: usize,
    /// Nodes per depth level, `levels[0]` = children of the root.
    pub levels: Vec<usize>,
}

impl TreeStats {
    /// Compute the statistics of `tree`.
    pub fn of(tree: &FpTree) -> TreeStats {
        let nodes = tree.node_count().saturating_sub(1);
        let mut levels: Vec<usize> = Vec::new();
        let mut stack: Vec<NodeId> = tree.children(NodeId::ROOT).collect();
        while let Some(node) = stack.pop() {
            let depth = tree.depth(node) as usize;
            if levels.len() < depth {
                levels.resize(depth, 0);
            }
            levels[depth - 1] += 1;
            stack.extend(tree.children(node));
        }
        let mut pairs = 0usize;
        let mut doc_depth_sum = 0u64;
        let mut docs = 0usize;
        for (node, _doc) in tree.iter_docs() {
            docs += 1;
            let d = tree.depth(node) as usize;
            pairs += d;
            doc_depth_sum += d as u64;
        }
        TreeStats {
            docs,
            nodes,
            pairs,
            compression: if nodes == 0 {
                1.0
            } else {
                pairs as f64 / nodes as f64
            },
            max_depth: tree.max_depth(),
            mean_doc_depth: if docs == 0 {
                0.0
            } else {
                doc_depth_sum as f64 / docs as f64
            },
            ubiquitous: tree.order().ubiquitous(),
            levels,
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} docs ({} pairs) in {} nodes — {:.2}x compression, depth ≤ {}, {} ubiquitous level(s)",
            self.docs, self.pairs, self.nodes, self.compression, self.max_depth, self.ubiquitous
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{Dictionary, DocId, Document};

    fn docs(dict: &Dictionary, srcs: &[&str]) -> Vec<Document> {
        srcs.iter()
            .enumerate()
            .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, dict).unwrap())
            .collect()
    }

    #[test]
    fn table1_statistics() {
        let dict = Dictionary::new();
        let ds = docs(
            &dict,
            &[
                r#"{"a":3,"b":7,"c":1}"#,
                r#"{"a":3,"b":8}"#,
                r#"{"a":3,"b":7}"#,
                r#"{"b":8,"c":2}"#,
            ],
        );
        let tree = crate::FpTree::build(&ds);
        let stats = TreeStats::of(&tree);
        assert_eq!(stats.docs, 4);
        assert_eq!(stats.nodes, 6);
        assert_eq!(stats.pairs, 3 + 2 + 2 + 2);
        assert!((stats.compression - 9.0 / 6.0).abs() < 1e-9);
        assert_eq!(stats.max_depth, 3);
        assert_eq!(stats.levels, vec![2, 3, 1]);
        assert_eq!(stats.ubiquitous, 1);
        assert!(stats.summary().contains("4 docs"));
    }

    #[test]
    fn identical_documents_compress_maximally() {
        let dict = Dictionary::new();
        let srcs: Vec<String> = (0..50)
            .map(|_| r#"{"x":1,"y":2,"z":3}"#.to_string())
            .collect();
        let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
        let ds = docs(&dict, &refs);
        let tree = crate::FpTree::build(&ds);
        let stats = TreeStats::of(&tree);
        assert_eq!(stats.nodes, 3, "one shared path");
        assert!((stats.compression - 50.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_documents_do_not_compress() {
        let dict = Dictionary::new();
        let srcs: Vec<String> = (0..10).map(|i| format!(r#"{{"k{i}":{i}}}"#)).collect();
        let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
        let ds = docs(&dict, &refs);
        let tree = crate::FpTree::build(&ds);
        let stats = TreeStats::of(&tree);
        assert!((stats.compression - 1.0).abs() < 1e-9);
        assert_eq!(stats.levels, vec![10]);
    }

    #[test]
    fn empty_tree_statistics() {
        let tree = crate::FpTree::build(&[]);
        let stats = TreeStats::of(&tree);
        assert_eq!(stats.docs, 0);
        assert_eq!(stats.nodes, 0);
        assert!((stats.compression - 1.0).abs() < 1e-9);
        assert!(stats.levels.is_empty());
    }
}
