//! The FP-tree document store (§V-A).
//!
//! An arena-backed prefix tree over attribute-value pairs, ordered by a
//! frozen [`AttrOrder`]. Each node is labelled with one interned pair,
//! carries the ids of the documents whose insertion path *terminates* there
//! (exactly as in the paper's Fig. 4), and is chained into a header list
//! connecting equally-labelled nodes, as in the original FP-tree of Han et
//! al. Every root-to-leaf path is a *branch* with a unique branch id.

use crate::order::AttrOrder;
use ssj_json::{DocId, Document, FxHashMap, Pair};

/// Index of a node in the tree arena. `NodeId::ROOT` is the synthetic root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The synthetic `null`-labelled root node.
    pub const ROOT: NodeId = NodeId(0);

    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug)]
struct Node {
    /// Label: the attribute-value pair; undefined for the root.
    pair: Pair,
    parent: NodeId,
    depth: u32,
    /// Child nodes keyed by their label's pair id.
    children: FxHashMap<u32, NodeId>,
    /// Documents whose pair sequence ends at this node.
    docs: Vec<DocId>,
    /// Next node with the same label (header-table chain).
    next_same_label: Option<NodeId>,
    /// Id of the branch this node extended when created.
    branch: u32,
}

/// An FP-tree over one window of documents.
#[derive(Debug)]
pub struct FpTree {
    order: AttrOrder,
    nodes: Vec<Node>,
    /// First node per label, as in the classic FP-tree header table.
    header: FxHashMap<u32, NodeId>,
    /// Last node per label, for O(1) chain appends.
    header_tail: FxHashMap<u32, NodeId>,
    doc_count: usize,
    next_branch: u32,
    /// Documents removed since construction (tombstoned paths).
    removed: u64,
}

impl FpTree {
    /// Create an empty tree governed by `order`.
    pub fn new(order: AttrOrder) -> Self {
        let root = Node {
            pair: Pair {
                attr: ssj_json::AttrId(u32::MAX),
                avp: ssj_json::AvpId(u32::MAX),
            },
            parent: NodeId::ROOT,
            depth: 0,
            children: FxHashMap::default(),
            docs: Vec::new(),
            next_same_label: None,
            branch: 0,
        };
        FpTree {
            order,
            nodes: vec![root],
            header: FxHashMap::default(),
            header_tail: FxHashMap::default(),
            doc_count: 0,
            next_branch: 0,
            removed: 0,
        }
    }

    /// Build a tree for a batch: compute the attribute order, then insert
    /// every document.
    pub fn build<'a, I>(docs: I) -> Self
    where
        I: IntoIterator<Item = &'a Document> + Clone,
    {
        let order = AttrOrder::compute(docs.clone());
        let mut tree = FpTree::new(order);
        for doc in docs {
            tree.insert(doc);
        }
        tree
    }

    /// The governing attribute order.
    #[inline]
    pub fn order(&self) -> &AttrOrder {
        &self.order
    }

    /// Insert one document; returns the terminal node of its path.
    pub fn insert(&mut self, doc: &Document) -> NodeId {
        let ordered = self.order.reorder(doc);
        let mut node = NodeId::ROOT;
        let mut extended = false;
        for pair in ordered {
            if let Some(&child) = self.nodes[node.index()].children.get(&pair.avp.0) {
                node = child;
            } else {
                node = self.add_child(node, pair);
                extended = true;
            }
        }
        if extended {
            self.next_branch += 1;
        }
        self.nodes[node.index()].docs.push(doc.id());
        self.doc_count += 1;
        node
    }

    fn add_child(&mut self, parent: NodeId, pair: Pair) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let depth = self.nodes[parent.index()].depth + 1;
        self.nodes.push(Node {
            pair,
            parent,
            depth,
            children: FxHashMap::default(),
            docs: Vec::new(),
            next_same_label: None,
            branch: self.next_branch,
        });
        self.nodes[parent.index()].children.insert(pair.avp.0, id);
        // Maintain the header chain of equally-labelled nodes.
        match self.header_tail.get(&pair.avp.0).copied() {
            Some(tail) => {
                self.nodes[tail.index()].next_same_label = Some(id);
            }
            None => {
                self.header.insert(pair.avp.0, id);
            }
        }
        self.header_tail.insert(pair.avp.0, id);
        id
    }

    /// Remove one previously inserted document (the "tree updates" the
    /// paper defers for sliding windows, §V-A). Walks the document's path
    /// and deletes its id from the terminal node's list. Nodes are *not*
    /// physically pruned — empty branches are tombstones that probes skip
    /// naturally (their doc lists are empty); call [`FpTree::tombstone_ratio`]
    /// to decide when a rebuild pays off.
    ///
    /// Returns `false` when the document is not in the tree (wrong path or
    /// id not present).
    pub fn remove(&mut self, doc: &Document) -> bool {
        let ordered = self.order.reorder(doc);
        let mut node = NodeId::ROOT;
        for pair in ordered {
            match self.nodes[node.index()].children.get(&pair.avp.0) {
                Some(&child) => node = child,
                None => return false,
            }
        }
        let docs = &mut self.nodes[node.index()].docs;
        match docs.iter().position(|&d| d == doc.id()) {
            Some(pos) => {
                docs.swap_remove(pos);
                self.doc_count -= 1;
                self.removed += 1;
                true
            }
            None => false,
        }
    }

    /// Fraction of all insertions that have since been removed — when this
    /// grows large, rebuilding the tree reclaims the tombstoned branches.
    pub fn tombstone_ratio(&self) -> f64 {
        let total = self.doc_count + self.removed as usize;
        if total == 0 {
            0.0
        } else {
            self.removed as f64 / total as f64
        }
    }

    /// The label of `node` (undefined for the root).
    #[inline]
    pub fn pair(&self, node: NodeId) -> Pair {
        self.nodes[node.index()].pair
    }

    /// The parent of `node`.
    #[inline]
    pub fn parent(&self, node: NodeId) -> NodeId {
        self.nodes[node.index()].parent
    }

    /// Depth of `node` (root = 0).
    #[inline]
    pub fn depth(&self, node: NodeId) -> u32 {
        self.nodes[node.index()].depth
    }

    /// Child of `node` labelled with pair id `avp`, if present.
    #[inline]
    pub fn child(&self, node: NodeId, avp: ssj_json::AvpId) -> Option<NodeId> {
        self.nodes[node.index()].children.get(&avp.0).copied()
    }

    /// Iterate the children of `node`.
    pub fn children(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[node.index()].children.values().copied()
    }

    /// Documents terminating at `node`.
    #[inline]
    pub fn docs(&self, node: NodeId) -> &[DocId] {
        &self.nodes[node.index()].docs
    }

    /// First node carrying label `avp` (header table entry).
    pub fn header_first(&self, avp: ssj_json::AvpId) -> Option<NodeId> {
        self.header.get(&avp.0).copied()
    }

    /// Follow the header chain from a node to the next equally-labelled one.
    pub fn next_same_label(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].next_same_label
    }

    /// The branch id assigned when `node` was created.
    pub fn branch(&self, node: NodeId) -> u32 {
        self.nodes[node.index()].branch
    }

    /// Number of inserted documents.
    #[inline]
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Number of nodes including the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct branches (root-to-leaf paths created so far).
    pub fn branch_count(&self) -> usize {
        self.next_branch as usize
    }

    /// Maximum node depth — useful to verify the compression the paper
    /// relies on for "deep trees" with few distinct frequent values.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// All `(node, doc)` pairs — diagnostics and tests.
    pub fn iter_docs(&self) -> impl Iterator<Item = (NodeId, DocId)> + '_ {
        self.nodes.iter().enumerate().flat_map(|(i, n)| {
            n.docs.iter().map(move |&d| (NodeId(i as u32), d))
        })
    }

    /// ASCII rendering of the tree (labels via `dict`, document ids in
    /// brackets), for debugging and documentation:
    ///
    /// ```text
    /// root
    /// ├─ b:7
    /// │  └─ a:3 [d3]
    /// │     └─ c:1 [d1]
    /// └─ b:8
    ///    ├─ a:3 [d2]
    ///    └─ c:2 [d4]
    /// ```
    pub fn render(&self, dict: &ssj_json::Dictionary) -> String {
        let mut out = String::from("root\n");
        let children = self.sorted_children(NodeId::ROOT);
        for (i, child) in children.iter().enumerate() {
            self.render_node(dict, *child, "", i + 1 == children.len(), &mut out);
        }
        out
    }

    fn sorted_children(&self, node: NodeId) -> Vec<NodeId> {
        let mut cs: Vec<NodeId> = self.children(node).collect();
        // Deterministic output: order by label id.
        cs.sort_by_key(|&c| self.pair(c).avp);
        cs
    }

    fn render_node(
        &self,
        dict: &ssj_json::Dictionary,
        node: NodeId,
        prefix: &str,
        last: bool,
        out: &mut String,
    ) {
        use std::fmt::Write;
        let branch = if last { "└─ " } else { "├─ " };
        let docs = self.docs(node);
        let doc_list = if docs.is_empty() {
            String::new()
        } else {
            let ids: Vec<String> = docs.iter().map(|d| d.to_string()).collect();
            format!(" [{}]", ids.join(", "))
        };
        let _ = writeln!(
            out,
            "{prefix}{branch}{}{doc_list}",
            dict.render_avp(self.pair(node).avp)
        );
        let next_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
        let children = self.sorted_children(node);
        for (i, child) in children.iter().enumerate() {
            self.render_node(dict, *child, &next_prefix, i + 1 == children.len(), out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{Dictionary, DocId, Document};

    fn table1(dict: &Dictionary) -> Vec<Document> {
        [
            r#"{"a":3,"b":7,"c":1}"#,
            r#"{"a":3,"b":8}"#,
            r#"{"a":3,"b":7}"#,
            r#"{"b":8,"c":2}"#,
        ]
        .iter()
        .enumerate()
        .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, dict).unwrap())
        .collect()
    }

    /// The tree of the paper's Fig. 4: root → {b:7 → a:3 [d3] → c:1 [d1],
    /// b:8 → a:3 [d2], b:8 → c:2 [d4]}.
    #[test]
    fn paper_table1_tree_shape() {
        let dict = Dictionary::new();
        let docs = table1(&dict);
        let tree = FpTree::build(docs.iter());

        assert_eq!(tree.doc_count(), 4);
        // Nodes: root, b:7, a:3, c:1, b:8, a:3, c:2 = 7 nodes.
        assert_eq!(tree.node_count(), 7);
        assert_eq!(tree.max_depth(), 3);

        // Root has exactly two children: b:7 and b:8.
        let roots: Vec<NodeId> = tree.children(NodeId::ROOT).collect();
        assert_eq!(roots.len(), 2);

        let b7 = dict.lookup("b", &ssj_json::Scalar::Int(7)).unwrap();
        let b8 = dict.lookup("b", &ssj_json::Scalar::Int(8)).unwrap();
        let a3 = dict.lookup("a", &ssj_json::Scalar::Int(3)).unwrap();
        let c1 = dict.lookup("c", &ssj_json::Scalar::Int(1)).unwrap();
        let c2 = dict.lookup("c", &ssj_json::Scalar::Int(2)).unwrap();

        let nb7 = tree.child(NodeId::ROOT, b7.avp).unwrap();
        let nb8 = tree.child(NodeId::ROOT, b8.avp).unwrap();
        let na3_left = tree.child(nb7, a3.avp).unwrap();
        let nc1 = tree.child(na3_left, c1.avp).unwrap();
        let na3_right = tree.child(nb8, a3.avp).unwrap();
        let nc2 = tree.child(nb8, c2.avp).unwrap();

        // Document ids land on the terminal node of each path (Fig. 4).
        assert_eq!(tree.docs(na3_left), &[DocId(3)]);
        assert_eq!(tree.docs(nc1), &[DocId(1)]);
        assert_eq!(tree.docs(na3_right), &[DocId(2)]);
        assert_eq!(tree.docs(nc2), &[DocId(4)]);
        assert!(tree.docs(nb7).is_empty());
        assert!(tree.docs(nb8).is_empty());
    }

    #[test]
    fn header_chain_links_equal_labels() {
        let dict = Dictionary::new();
        let docs = table1(&dict);
        let tree = FpTree::build(docs.iter());
        let a3 = dict.lookup("a", &ssj_json::Scalar::Int(3)).unwrap();
        let first = tree.header_first(a3.avp).unwrap();
        let second = tree.next_same_label(first).unwrap();
        assert_eq!(tree.pair(first).avp, a3.avp);
        assert_eq!(tree.pair(second).avp, a3.avp);
        assert!(tree.next_same_label(second).is_none());
        assert_ne!(first, second);
    }

    #[test]
    fn identical_documents_share_a_path() {
        let dict = Dictionary::new();
        let d1 = Document::from_json(DocId(1), r#"{"x":1,"y":2}"#, &dict).unwrap();
        let d2 = Document::from_json(DocId(2), r#"{"y":2,"x":1}"#, &dict).unwrap();
        let tree = FpTree::build([&d1, &d2]);
        // Only root + 2 nodes; both docs at the same terminal node.
        assert_eq!(tree.node_count(), 3);
        let terminal = tree
            .iter_docs()
            .map(|(n, _)| n)
            .next()
            .expect("has docs");
        assert_eq!(tree.docs(terminal), &[DocId(1), DocId(2)]);
    }

    #[test]
    fn branch_count_tracks_distinct_paths() {
        let dict = Dictionary::new();
        let docs = table1(&dict);
        let tree = FpTree::build(docs.iter());
        // d1 creates branch 1; d2 branch 2; d3 reuses d1's prefix (extends
        // nothing new: b:7→a:3 already exists) — no new branch; d4 branch 3.
        assert_eq!(tree.branch_count(), 3);
    }

    #[test]
    fn empty_tree() {
        let tree = FpTree::build(std::iter::empty());
        assert_eq!(tree.doc_count(), 0);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.max_depth(), 0);
    }

    #[test]
    fn insertion_after_build_with_unseen_attrs() {
        let dict = Dictionary::new();
        let docs = table1(&dict);
        let mut tree = FpTree::build(docs.iter());
        let late =
            Document::from_json(DocId(99), r#"{"b":7,"zz":42}"#, &dict).unwrap();
        let node = tree.insert(&late);
        assert_eq!(tree.docs(node), &[DocId(99)]);
        assert_eq!(tree.doc_count(), 5);
        // zz is unseen by the order; it must sort after all ranked attrs.
        assert_eq!(tree.depth(node), 2);
        let parent = tree.parent(node);
        assert_eq!(dict.attr_name(tree.pair(parent).attr), "b");
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use ssj_json::{Dictionary, DocId, Document};

    #[test]
    fn render_matches_fig4_structure() {
        let dict = Dictionary::new();
        let docs: Vec<Document> = [
            r#"{"a":3,"b":7,"c":1}"#,
            r#"{"a":3,"b":8}"#,
            r#"{"a":3,"b":7}"#,
            r#"{"b":8,"c":2}"#,
        ]
        .iter()
        .enumerate()
        .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, &dict).unwrap())
        .collect();
        let tree = FpTree::build(docs.iter());
        let rendered = tree.render(&dict);
        assert!(rendered.starts_with("root\n"), "{rendered}");
        assert!(rendered.contains("b:7"));
        assert!(rendered.contains("a:3 [d3]"));
        assert!(rendered.contains("c:1 [d1]"));
        assert!(rendered.contains("a:3 [d2]"));
        assert!(rendered.contains("c:2 [d4]"));
        // Two subtrees under the root → exactly one '└─ b:' at top level.
        let top_level: Vec<&str> = rendered
            .lines()
            .filter(|l| l.starts_with("├─") || l.starts_with("└─"))
            .collect();
        assert_eq!(top_level.len(), 2, "{rendered}");
    }
}
