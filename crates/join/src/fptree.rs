//! The FP-tree document store (§V-A).
//!
//! A cache-friendly structure-of-arrays arena over attribute-value pairs,
//! ordered by a frozen [`AttrOrder`]. Node fields live in parallel vectors
//! (label, parent, depth, branch, first-child, next-sibling, header chain),
//! so hot traversals touch dense homogeneous memory instead of chasing
//! per-node heap objects. Children are linked first-child/next-sibling;
//! exact child lookup during insertion goes through a single open-addressed
//! map keyed by `(parent, label)`. Each node is labelled with one interned
//! pair, carries the ids of the documents whose insertion path *terminates*
//! there (exactly as in the paper's Fig. 4), and is chained into a header
//! list connecting equally-labelled nodes, as in the original FP-tree of
//! Han et al. Every root-to-leaf path is a *branch* with a unique branch id.
//!
//! # Document storage
//!
//! Per-node document lists are slices `(offset, len, cap)` of one shared
//! pool ([`FpTree::docs`] returns `&[DocId]` directly out of it). Appends go
//! in place while a slice has spare capacity or sits at the pool's end;
//! otherwise the slice is relocated to the end with geometric
//! over-allocation, leaving a hole. [`FpTree::seal`] compacts the holes away
//! once a window's build completes, so frozen trees store doc ids densely in
//! node order — the order probes walk them.

use crate::order::AttrOrder;
use ssj_json::{DocId, Document, FxHashMap, Pair};

/// Sentinel for "no node" in the intrusive child/sibling/header links.
const NIL: u32 = u32::MAX;

/// Index of a node in the tree arena. `NodeId::ROOT` is the synthetic root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The synthetic `null`-labelled root node.
    pub const ROOT: NodeId = NodeId(0);

    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// An FP-tree over one window of documents, stored as parallel arrays.
#[derive(Debug)]
pub struct FpTree {
    order: AttrOrder,
    /// Node labels; undefined for the root.
    label: Vec<Pair>,
    parent: Vec<u32>,
    depth: Vec<u32>,
    /// Id of the branch each node extended when created.
    branch: Vec<u32>,
    first_child: Vec<u32>,
    next_sibling: Vec<u32>,
    /// Next node with the same label (header-table chain); `NIL` at chain end.
    next_same_label: Vec<u32>,
    /// Exact child lookup: `(parent << 32 | avp) → node`.
    child_index: FxHashMap<u64, u32>,
    /// Header table: label → (first, last) chain nodes.
    header: FxHashMap<u32, (u32, u32)>,
    /// Shared pool backing every node's document list.
    pool: Vec<DocId>,
    doc_off: Vec<u32>,
    doc_len: Vec<u32>,
    doc_cap: Vec<u32>,
    doc_count: usize,
    next_branch: u32,
    /// Documents removed since construction (tombstoned paths).
    removed: u64,
    /// Reused by `insert`/`remove` so steady-state updates don't allocate.
    reorder_buf: Vec<Pair>,
}

impl FpTree {
    /// Create an empty tree governed by `order`.
    pub fn new(order: AttrOrder) -> Self {
        FpTree {
            order,
            label: vec![Pair {
                attr: ssj_json::AttrId(u32::MAX),
                avp: ssj_json::AvpId(u32::MAX),
            }],
            parent: vec![0],
            depth: vec![0],
            branch: vec![0],
            first_child: vec![NIL],
            next_sibling: vec![NIL],
            next_same_label: vec![NIL],
            child_index: FxHashMap::default(),
            header: FxHashMap::default(),
            pool: Vec::new(),
            doc_off: vec![0],
            doc_len: vec![0],
            doc_cap: vec![0],
            doc_count: 0,
            next_branch: 0,
            removed: 0,
            reorder_buf: Vec::new(),
        }
    }

    /// Build a tree for a batch: compute the attribute order, insert every
    /// document, then [`seal`](FpTree::seal) the document pool.
    pub fn build(docs: &[Document]) -> Self {
        let order = AttrOrder::compute(docs);
        let mut tree = FpTree::new(order);
        for doc in docs {
            tree.insert(doc);
        }
        tree.seal();
        tree
    }

    /// The governing attribute order.
    #[inline]
    pub fn order(&self) -> &AttrOrder {
        &self.order
    }

    /// Approximate heap footprint of the tree arena in bytes: the SoA node
    /// vectors, the document pool, and the hash indexes (counted at entry
    /// size, ignoring table load factor). Used by the out-of-core tiering
    /// layer for budget accounting — an estimate, not an allocator
    /// measurement.
    pub fn approx_bytes(&self) -> usize {
        let nodes = self.label.len();
        let soa = nodes
            * (std::mem::size_of::<Pair>()      // label
                + 5 * std::mem::size_of::<u32>() // parent/depth/branch/first_child/next_sibling
                + std::mem::size_of::<u32>()); // next_same_label
        let pool = self.pool.len() * std::mem::size_of::<DocId>()
            + (self.doc_off.len() + self.doc_len.len() + self.doc_cap.len())
                * std::mem::size_of::<u32>();
        let maps = self.child_index.len()
            * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
            + self.header.len() * (std::mem::size_of::<u64>() + 2 * std::mem::size_of::<u32>());
        std::mem::size_of::<FpTree>() + soa + pool + maps
    }

    /// Insert one document; returns the terminal node of its path.
    pub fn insert(&mut self, doc: &Document) -> NodeId {
        let mut ordered = std::mem::take(&mut self.reorder_buf);
        self.order.reorder_into(doc, &mut ordered);
        let mut node = 0u32;
        let mut extended = false;
        for &pair in &ordered {
            let key = child_key(node, pair.avp.0);
            match self.child_index.get(&key) {
                Some(&child) => node = child,
                None => {
                    node = self.add_child(node, pair);
                    extended = true;
                }
            }
        }
        self.reorder_buf = ordered;
        if extended {
            self.next_branch += 1;
        }
        self.push_doc(node, doc.id());
        self.doc_count += 1;
        NodeId(node)
    }

    fn add_child(&mut self, parent: u32, pair: Pair) -> u32 {
        let id = self.label.len() as u32;
        self.label.push(pair);
        self.parent.push(parent);
        self.depth.push(self.depth[parent as usize] + 1);
        self.branch.push(self.next_branch);
        self.first_child.push(NIL);
        // Prepend to the parent's child chain (reverse insertion order).
        self.next_sibling.push(self.first_child[parent as usize]);
        self.first_child[parent as usize] = id;
        self.next_same_label.push(NIL);
        self.doc_off.push(0);
        self.doc_len.push(0);
        self.doc_cap.push(0);
        self.child_index.insert(child_key(parent, pair.avp.0), id);
        // Maintain the header chain of equally-labelled nodes.
        match self.header.get_mut(&pair.avp.0) {
            Some((_, tail)) => {
                self.next_same_label[*tail as usize] = id;
                *tail = id;
            }
            None => {
                self.header.insert(pair.avp.0, (id, id));
            }
        }
        id
    }

    /// Append `doc` to `node`'s slice of the shared pool: in place when the
    /// slice has spare capacity or ends the pool, otherwise relocate it to
    /// the pool's end with geometric over-allocation (amortised O(1)).
    fn push_doc(&mut self, node: u32, doc: DocId) {
        let i = node as usize;
        let (off, len, cap) = (self.doc_off[i], self.doc_len[i], self.doc_cap[i]);
        if len < cap {
            self.pool[(off + len) as usize] = doc;
            self.doc_len[i] = len + 1;
        } else if (off + len) as usize == self.pool.len() {
            self.pool.push(doc);
            self.doc_len[i] = len + 1;
            self.doc_cap[i] = len + 1;
        } else {
            let new_off = self.pool.len() as u32;
            let new_cap = (2 * len + 1).max(4);
            self.pool.reserve(new_cap as usize);
            self.pool
                .extend_from_within(off as usize..(off + len) as usize);
            self.pool.push(doc);
            // Pad the reserved tail so later appends can write in place.
            self.pool
                .resize((new_off + new_cap) as usize, DocId(u64::MAX));
            self.doc_off[i] = new_off;
            self.doc_len[i] = len + 1;
            self.doc_cap[i] = new_cap;
        }
    }

    /// Compact the shared document pool: drop relocation holes and spare
    /// capacity, laying every node's slice out densely in node order. Called
    /// by [`build`](FpTree::build) when a window closes; safe (and cheap) to
    /// call again at any time.
    pub fn seal(&mut self) {
        let mut packed = Vec::with_capacity(self.doc_count);
        for i in 0..self.doc_len.len() {
            let off = self.doc_off[i] as usize;
            let len = self.doc_len[i] as usize;
            self.doc_off[i] = packed.len() as u32;
            self.doc_cap[i] = len as u32;
            packed.extend_from_slice(&self.pool[off..off + len]);
        }
        self.pool = packed;
    }

    /// Remove one previously inserted document (the "tree updates" the
    /// paper defers for sliding windows, §V-A). Walks the document's path
    /// and deletes its id from the terminal node's list. Nodes are *not*
    /// physically pruned — empty branches are tombstones that probes skip
    /// naturally (their doc lists are empty); call [`FpTree::tombstone_ratio`]
    /// to decide when a rebuild pays off.
    ///
    /// Returns `false` when the document is not in the tree (wrong path or
    /// id not present).
    pub fn remove(&mut self, doc: &Document) -> bool {
        let mut ordered = std::mem::take(&mut self.reorder_buf);
        self.order.reorder_into(doc, &mut ordered);
        let mut node = 0u32;
        let mut found = true;
        for &pair in &ordered {
            match self.child_index.get(&child_key(node, pair.avp.0)) {
                Some(&child) => node = child,
                None => {
                    found = false;
                    break;
                }
            }
        }
        self.reorder_buf = ordered;
        if !found {
            return false;
        }
        let i = node as usize;
        let (off, len) = (self.doc_off[i] as usize, self.doc_len[i] as usize);
        let slice = &mut self.pool[off..off + len];
        match slice.iter().position(|&d| d == doc.id()) {
            Some(pos) => {
                slice.swap(pos, len - 1);
                self.doc_len[i] = (len - 1) as u32;
                self.doc_count -= 1;
                self.removed += 1;
                true
            }
            None => false,
        }
    }

    /// Fraction of all insertions that have since been removed — when this
    /// grows large, rebuilding the tree reclaims the tombstoned branches.
    pub fn tombstone_ratio(&self) -> f64 {
        let total = self.doc_count + self.removed as usize;
        if total == 0 {
            0.0
        } else {
            self.removed as f64 / total as f64
        }
    }

    /// The label of `node` (undefined for the root).
    #[inline]
    pub fn pair(&self, node: NodeId) -> Pair {
        self.label[node.index()]
    }

    /// The parent of `node`.
    #[inline]
    pub fn parent(&self, node: NodeId) -> NodeId {
        NodeId(self.parent[node.index()])
    }

    /// Depth of `node` (root = 0).
    #[inline]
    pub fn depth(&self, node: NodeId) -> u32 {
        self.depth[node.index()]
    }

    /// Child of `node` labelled with pair id `avp`, if present.
    #[inline]
    pub fn child(&self, node: NodeId, avp: ssj_json::AvpId) -> Option<NodeId> {
        self.child_index
            .get(&child_key(node.0, avp.0))
            .map(|&c| NodeId(c))
    }

    /// First child of `node` in the sibling chain, if any.
    #[inline]
    pub fn first_child(&self, node: NodeId) -> Option<NodeId> {
        link(self.first_child[node.index()])
    }

    /// Next sibling of `node`, if any.
    #[inline]
    pub fn next_sibling(&self, node: NodeId) -> Option<NodeId> {
        link(self.next_sibling[node.index()])
    }

    /// Iterate the children of `node` (reverse insertion order).
    pub fn children(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = self.first_child[node.index()];
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let id = cur;
                cur = self.next_sibling[id as usize];
                Some(NodeId(id))
            }
        })
    }

    /// Documents terminating at `node`.
    #[inline]
    pub fn docs(&self, node: NodeId) -> &[DocId] {
        let i = node.index();
        let off = self.doc_off[i] as usize;
        &self.pool[off..off + self.doc_len[i] as usize]
    }

    /// First node carrying label `avp` (header table entry).
    pub fn header_first(&self, avp: ssj_json::AvpId) -> Option<NodeId> {
        self.header.get(&avp.0).map(|&(head, _)| NodeId(head))
    }

    /// Follow the header chain from a node to the next equally-labelled one.
    pub fn next_same_label(&self, node: NodeId) -> Option<NodeId> {
        link(self.next_same_label[node.index()])
    }

    /// The branch id assigned when `node` was created.
    pub fn branch(&self, node: NodeId) -> u32 {
        self.branch[node.index()]
    }

    /// Number of inserted documents.
    #[inline]
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Number of nodes including the root.
    pub fn node_count(&self) -> usize {
        self.label.len()
    }

    /// Number of distinct branches (root-to-leaf paths created so far).
    pub fn branch_count(&self) -> usize {
        self.next_branch as usize
    }

    /// Maximum node depth — useful to verify the compression the paper
    /// relies on for "deep trees" with few distinct frequent values.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// All `(node, doc)` pairs — diagnostics and tests.
    pub fn iter_docs(&self) -> impl Iterator<Item = (NodeId, DocId)> + '_ {
        (0..self.label.len()).flat_map(move |i| {
            self.docs(NodeId(i as u32))
                .iter()
                .map(move |&d| (NodeId(i as u32), d))
        })
    }

    /// ASCII rendering of the tree (labels via `dict`, document ids in
    /// brackets), for debugging and documentation:
    ///
    /// ```text
    /// root
    /// ├─ b:7
    /// │  └─ a:3 [d3]
    /// │     └─ c:1 [d1]
    /// └─ b:8
    ///    ├─ a:3 [d2]
    ///    └─ c:2 [d4]
    /// ```
    pub fn render(&self, dict: &ssj_json::Dictionary) -> String {
        let mut out = String::from("root\n");
        let children = self.sorted_children(NodeId::ROOT);
        for (i, child) in children.iter().enumerate() {
            self.render_node(dict, *child, "", i + 1 == children.len(), &mut out);
        }
        out
    }

    fn sorted_children(&self, node: NodeId) -> Vec<NodeId> {
        let mut cs: Vec<NodeId> = self.children(node).collect();
        // Deterministic output: order by label id.
        cs.sort_by_key(|&c| self.pair(c).avp);
        cs
    }

    fn render_node(
        &self,
        dict: &ssj_json::Dictionary,
        node: NodeId,
        prefix: &str,
        last: bool,
        out: &mut String,
    ) {
        use std::fmt::Write;
        let branch = if last { "└─ " } else { "├─ " };
        let docs = self.docs(node);
        let doc_list = if docs.is_empty() {
            String::new()
        } else {
            let ids: Vec<String> = docs.iter().map(|d| d.to_string()).collect();
            format!(" [{}]", ids.join(", "))
        };
        let _ = writeln!(
            out,
            "{prefix}{branch}{}{doc_list}",
            dict.render_avp(self.pair(node).avp)
        );
        let next_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
        let children = self.sorted_children(node);
        for (i, child) in children.iter().enumerate() {
            self.render_node(dict, *child, &next_prefix, i + 1 == children.len(), out);
        }
    }
}

#[inline]
fn child_key(parent: u32, avp: u32) -> u64 {
    ((parent as u64) << 32) | avp as u64
}

#[inline]
fn link(raw: u32) -> Option<NodeId> {
    if raw == NIL {
        None
    } else {
        Some(NodeId(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{Dictionary, DocId, Document};

    fn table1(dict: &Dictionary) -> Vec<Document> {
        [
            r#"{"a":3,"b":7,"c":1}"#,
            r#"{"a":3,"b":8}"#,
            r#"{"a":3,"b":7}"#,
            r#"{"b":8,"c":2}"#,
        ]
        .iter()
        .enumerate()
        .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, dict).unwrap())
        .collect()
    }

    /// The tree of the paper's Fig. 4: root → {b:7 → a:3 [d3] → c:1 [d1],
    /// b:8 → a:3 [d2], b:8 → c:2 [d4]}.
    #[test]
    fn paper_table1_tree_shape() {
        let dict = Dictionary::new();
        let docs = table1(&dict);
        let tree = FpTree::build(&docs);

        assert_eq!(tree.doc_count(), 4);
        // Nodes: root, b:7, a:3, c:1, b:8, a:3, c:2 = 7 nodes.
        assert_eq!(tree.node_count(), 7);
        assert_eq!(tree.max_depth(), 3);

        // Root has exactly two children: b:7 and b:8.
        let roots: Vec<NodeId> = tree.children(NodeId::ROOT).collect();
        assert_eq!(roots.len(), 2);

        let b7 = dict.lookup("b", &ssj_json::Scalar::Int(7)).unwrap();
        let b8 = dict.lookup("b", &ssj_json::Scalar::Int(8)).unwrap();
        let a3 = dict.lookup("a", &ssj_json::Scalar::Int(3)).unwrap();
        let c1 = dict.lookup("c", &ssj_json::Scalar::Int(1)).unwrap();
        let c2 = dict.lookup("c", &ssj_json::Scalar::Int(2)).unwrap();

        let nb7 = tree.child(NodeId::ROOT, b7.avp).unwrap();
        let nb8 = tree.child(NodeId::ROOT, b8.avp).unwrap();
        let na3_left = tree.child(nb7, a3.avp).unwrap();
        let nc1 = tree.child(na3_left, c1.avp).unwrap();
        let na3_right = tree.child(nb8, a3.avp).unwrap();
        let nc2 = tree.child(nb8, c2.avp).unwrap();

        // Document ids land on the terminal node of each path (Fig. 4).
        assert_eq!(tree.docs(na3_left), &[DocId(3)]);
        assert_eq!(tree.docs(nc1), &[DocId(1)]);
        assert_eq!(tree.docs(na3_right), &[DocId(2)]);
        assert_eq!(tree.docs(nc2), &[DocId(4)]);
        assert!(tree.docs(nb7).is_empty());
        assert!(tree.docs(nb8).is_empty());
    }

    #[test]
    fn header_chain_links_equal_labels() {
        let dict = Dictionary::new();
        let docs = table1(&dict);
        let tree = FpTree::build(&docs);
        let a3 = dict.lookup("a", &ssj_json::Scalar::Int(3)).unwrap();
        let first = tree.header_first(a3.avp).unwrap();
        let second = tree.next_same_label(first).unwrap();
        assert_eq!(tree.pair(first).avp, a3.avp);
        assert_eq!(tree.pair(second).avp, a3.avp);
        assert!(tree.next_same_label(second).is_none());
        assert_ne!(first, second);
    }

    #[test]
    fn identical_documents_share_a_path() {
        let dict = Dictionary::new();
        let docs = vec![
            Document::from_json(DocId(1), r#"{"x":1,"y":2}"#, &dict).unwrap(),
            Document::from_json(DocId(2), r#"{"y":2,"x":1}"#, &dict).unwrap(),
        ];
        let tree = FpTree::build(&docs);
        // Only root + 2 nodes; both docs at the same terminal node.
        assert_eq!(tree.node_count(), 3);
        let terminal = tree.iter_docs().map(|(n, _)| n).next().expect("has docs");
        assert_eq!(tree.docs(terminal), &[DocId(1), DocId(2)]);
    }

    #[test]
    fn branch_count_tracks_distinct_paths() {
        let dict = Dictionary::new();
        let docs = table1(&dict);
        let tree = FpTree::build(&docs);
        // d1 creates branch 1; d2 branch 2; d3 reuses d1's prefix (extends
        // nothing new: b:7→a:3 already exists) — no new branch; d4 branch 3.
        assert_eq!(tree.branch_count(), 3);
    }

    #[test]
    fn empty_tree() {
        let tree = FpTree::build(&[]);
        assert_eq!(tree.doc_count(), 0);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.max_depth(), 0);
    }

    #[test]
    fn insertion_after_build_with_unseen_attrs() {
        let dict = Dictionary::new();
        let docs = table1(&dict);
        let mut tree = FpTree::build(&docs);
        let late = Document::from_json(DocId(99), r#"{"b":7,"zz":42}"#, &dict).unwrap();
        let node = tree.insert(&late);
        assert_eq!(tree.docs(node), &[DocId(99)]);
        assert_eq!(tree.doc_count(), 5);
        // zz is unseen by the order; it must sort after all ranked attrs.
        assert_eq!(tree.depth(node), 2);
        let parent = tree.parent(node);
        assert_eq!(dict.attr_name(tree.pair(parent).attr), "b");
    }

    /// Doc slices must stay correct across the pool's relocation and
    /// sealing machinery: interleave inserts across many terminal nodes so
    /// slices grow past their capacity and relocate repeatedly.
    #[test]
    fn shared_pool_survives_interleaved_growth_and_seal() {
        let dict = Dictionary::new();
        let mut docs = Vec::new();
        let mut id = 0u64;
        // 8 distinct paths, 9 docs each, round-robin so every append after
        // the first round hits a slice that is not at the pool's end.
        for _round in 0..9 {
            for path in 0..8 {
                id += 1;
                docs.push(
                    Document::from_json(
                        DocId(id),
                        &format!(r#"{{"p":{path},"q":{}}}"#, path * 10),
                        &dict,
                    )
                    .unwrap(),
                );
            }
        }
        let mut tree = FpTree::build(&docs);
        let expect =
            |path: u64| -> Vec<DocId> { (0..9).map(|r| DocId(r * 8 + path + 1)).collect() };
        let terminals: Vec<NodeId> = {
            let mut seen: Vec<NodeId> = tree.iter_docs().map(|(n, _)| n).collect();
            seen.dedup();
            seen
        };
        assert_eq!(terminals.len(), 8);
        for path in 0..8u64 {
            let d = &docs[path as usize];
            let node = tree.insert(d); // re-locate terminal via insert path
            let mut got = tree.docs(node).to_vec();
            let removed = tree.remove(d); // undo the probe insert
            assert!(removed);
            got.pop();
            assert_eq!(got, expect(path), "path {path}");
        }
        // Seal compacts to exactly doc_count entries, slices intact.
        tree.seal();
        assert_eq!(tree.pool.len(), tree.doc_count());
        for path in 0..8u64 {
            let d = &docs[path as usize];
            let node = tree.insert(d);
            let mut got = tree.docs(node).to_vec();
            assert!(tree.remove(d));
            got.pop();
            assert_eq!(got, expect(path), "sealed path {path}");
        }
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use ssj_json::{Dictionary, DocId, Document};

    #[test]
    fn render_matches_fig4_structure() {
        let dict = Dictionary::new();
        let docs: Vec<Document> = [
            r#"{"a":3,"b":7,"c":1}"#,
            r#"{"a":3,"b":8}"#,
            r#"{"a":3,"b":7}"#,
            r#"{"b":8,"c":2}"#,
        ]
        .iter()
        .enumerate()
        .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, &dict).unwrap())
        .collect();
        let tree = FpTree::build(&docs);
        let rendered = tree.render(&dict);
        assert!(rendered.starts_with("root\n"), "{rendered}");
        assert!(rendered.contains("b:7"));
        assert!(rendered.contains("a:3 [d3]"));
        assert!(rendered.contains("c:1 [d1]"));
        assert!(rendered.contains("a:3 [d2]"));
        assert!(rendered.contains("c:2 [d4]"));
        // Two subtrees under the root → exactly one '└─ b:' at top level.
        let top_level: Vec<&str> = rendered
            .lines()
            .filter(|l| l.starts_with("├─") || l.starts_with("└─"))
            .collect();
        assert_eq!(top_level.len(), 2, "{rendered}");
    }
}
