//! Sliding windows over FP-trees — the paper's "ongoing work" (§V-A).
//!
//! The paper evaluates tumbling windows only and notes that sliding windows
//! "require tree updates or frequent tree evictions and rebuilds". This
//! module implements the natural pane-chaining design: a sliding window of
//! `panes_per_window` panes, each pane itself a tumbling chunk. The open pane
//! buffers raw documents (probed by linear scan); when a pane fills, it is
//! frozen into an FP-tree. Probing consults the open buffer plus every frozen
//! pane; sliding evicts only the oldest pane — never a full rebuild.

use crate::fpjoin::{self, ProbeScratch};
use crate::fptree::FpTree;
use crate::windowspec::WindowSpec;
use ssj_json::{DocId, Document};
use std::collections::VecDeque;

/// A sliding-window joiner built from chained FP-tree panes.
///
/// ```
/// use ssj_join::{SlidingJoiner, WindowSpec};
/// use ssj_json::{Dictionary, DocId, Document};
///
/// let dict = Dictionary::new();
/// let mut joiner = SlidingJoiner::new(WindowSpec::sliding(2, 3)); // 3 panes x 2 docs
/// let d1 = Document::from_json(DocId(1), r#"{"k":1}"#, &dict).unwrap();
/// let d2 = Document::from_json(DocId(2), r#"{"k":1}"#, &dict).unwrap();
/// assert!(joiner.insert_and_probe(d1).is_empty());
/// assert_eq!(joiner.insert_and_probe(d2), vec![DocId(1)]);
/// ```
#[derive(Debug)]
pub struct SlidingJoiner {
    pane_size: usize,
    panes_per_window: usize,
    /// Frozen panes, oldest first.
    frozen: VecDeque<FpTree>,
    /// The open pane's raw documents.
    open: Vec<Document>,
    total_inserted: u64,
    /// Reused probe working memory (zero-alloc steady state).
    scratch: ProbeScratch,
    probe_buf: Vec<DocId>,
}

impl SlidingJoiner {
    /// A pane-chained window shaped by `spec`: `Sliding { pane_docs,
    /// panes_per_window }` chains that many panes; `Tumbling { docs }` is
    /// the 1-pane special case.
    ///
    /// # Panics
    /// When `spec` fails [`WindowSpec::validate`].
    pub fn new(spec: WindowSpec) -> Self {
        spec.validate().expect("invalid WindowSpec");
        let pane_size = spec.pane_docs();
        let panes_per_window = spec.panes_per_window();
        SlidingJoiner {
            pane_size,
            panes_per_window,
            frozen: VecDeque::new(),
            open: Vec::with_capacity(pane_size),
            total_inserted: 0,
            scratch: ProbeScratch::new(),
            probe_buf: Vec::new(),
        }
    }

    /// Probe the whole window for partners of `doc`, then insert it.
    /// Freezes the open pane and evicts the oldest frozen pane as needed.
    pub fn insert_and_probe(&mut self, doc: Document) -> Vec<DocId> {
        let mut partners: Vec<DocId> = Vec::new();
        for pane in &self.frozen {
            fpjoin::probe_into(pane, &doc, true, &mut self.scratch, &mut self.probe_buf);
            partners.extend_from_slice(&self.probe_buf);
        }
        partners.extend(
            self.open
                .iter()
                .filter(|d| d.joins_with(&doc))
                .map(|d| d.id()),
        );
        self.open.push(doc);
        self.total_inserted += 1;
        if self.open.len() >= self.pane_size {
            let docs = std::mem::take(&mut self.open);
            self.frozen.push_back(FpTree::build(&docs));
            // Keep at most panes_per_window - 1 frozen panes plus the open
            // one, so the window always spans panes_per_window panes.
            while self.frozen.len() >= self.panes_per_window {
                self.frozen.pop_front();
            }
            self.open = Vec::with_capacity(self.pane_size);
        }
        partners
    }

    /// Documents currently inside the window.
    pub fn window_len(&self) -> usize {
        self.open.len() + self.frozen.iter().map(|t| t.doc_count()).sum::<usize>()
    }

    /// Total documents ever inserted.
    pub fn total_inserted(&self) -> u64 {
        self.total_inserted
    }

    /// Number of frozen panes currently held.
    pub fn frozen_panes(&self) -> usize {
        self.frozen.len()
    }
}

/// A *true* sliding window over a single FP-tree: per-document eviction via
/// [`FpTree::remove`] (tombstoning) plus periodic rebuilds — the other
/// design the paper sketches ("tree updates or frequent tree evictions and
/// rebuilds", §V-A). Compared to [`SlidingJoiner`]'s panes it keeps exactly
/// the last `window` documents rather than a pane-quantized approximation.
#[derive(Debug)]
pub struct IncrementalSlidingJoiner {
    window: usize,
    rebuild_at: f64,
    buf: VecDeque<Document>,
    tree: FpTree,
    /// The §V-B fast path is only sound while every stored document carries
    /// the order's ubiquitous attributes; inserting one that does not
    /// disables it until the next rebuild.
    fast_path_safe: bool,
    rebuilds: u64,
    scratch: ProbeScratch,
}

impl IncrementalSlidingJoiner {
    /// A sliding window of exactly `window` documents; the tree is rebuilt
    /// (fresh attribute order, tombstones reclaimed) once the tombstone
    /// ratio exceeds `rebuild_at` (e.g. 0.5).
    ///
    /// # Panics
    /// When `window` is zero or `rebuild_at` is not in `(0, 1]`.
    pub fn new(window: usize, rebuild_at: f64) -> Self {
        assert!(window > 0);
        assert!(rebuild_at > 0.0 && rebuild_at <= 1.0);
        IncrementalSlidingJoiner {
            window,
            rebuild_at,
            buf: VecDeque::new(),
            tree: FpTree::build(&[]),
            fast_path_safe: true,
            rebuilds: 0,
            scratch: ProbeScratch::new(),
        }
    }

    /// Probe the window for partners of `doc`, insert it, evict the oldest
    /// document when the window is full.
    pub fn insert_and_probe(&mut self, doc: Document) -> Vec<DocId> {
        let mut partners = Vec::new();
        fpjoin::probe_into(
            &self.tree,
            &doc,
            self.fast_path_safe,
            &mut self.scratch,
            &mut partners,
        );
        self.tree.insert(&doc);
        // A document missing any ubiquitous attribute invalidates the
        // fast-path invariant until the next rebuild.
        if self.fast_path_safe {
            let order = self.tree.order();
            let ubiquitous = order.ubiquitous();
            self.fast_path_safe = order
                .attrs()
                .iter()
                .take(ubiquitous)
                .all(|&a| doc.has_attr(a));
        }
        self.buf.push_back(doc);
        if self.buf.len() > self.window {
            let old = self.buf.pop_front().expect("window non-empty");
            let removed = self.tree.remove(&old);
            debug_assert!(removed, "evicted document must be in the tree");
        }
        if self.tree.tombstone_ratio() > self.rebuild_at {
            self.tree = FpTree::build(self.buf.make_contiguous());
            self.fast_path_safe = true;
            self.rebuilds += 1;
        }
        partners
    }

    /// Documents currently in the window.
    pub fn window_len(&self) -> usize {
        self.buf.len()
    }

    /// Rebuilds performed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{Dictionary, DocId, Document};

    fn doc(dict: &Dictionary, id: u64, key: &str, val: i64) -> Document {
        Document::from_json(DocId(id), &format!(r#"{{"{key}":{val}}}"#), dict).unwrap()
    }

    /// Brute-force sliding-window oracle.
    fn oracle(docs: &[Document], window: usize) -> Vec<(DocId, DocId)> {
        let mut out = Vec::new();
        for (i, d) in docs.iter().enumerate() {
            let lo = i.saturating_sub(window);
            for o in &docs[lo..i] {
                if o.joins_with(d) {
                    out.push((o.id(), d.id()));
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn incremental_matches_oracle() {
        use rand::{Rng, SeedableRng};
        let dict = Dictionary::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let docs: Vec<Document> = (0..400u64)
            .map(|i| {
                let k = rng.gen_range(0..4);
                let v = rng.gen_range(0..6);
                let extra = rng.gen_range(0..3);
                Document::from_json(DocId(i), &format!(r#"{{"k{k}":{v},"e":{extra}}}"#), &dict)
                    .unwrap()
            })
            .collect();
        let window = 50;
        let mut j = IncrementalSlidingJoiner::new(window, 0.4);
        let mut got = Vec::new();
        for d in &docs {
            for p in j.insert_and_probe(d.clone()) {
                got.push((p.min(d.id()), p.max(d.id())));
            }
        }
        got.sort();
        assert_eq!(got, oracle(&docs, window));
        assert!(j.rebuilds() > 0, "rebuild threshold never reached");
        assert_eq!(j.window_len(), window);
    }

    #[test]
    fn remove_evicts_exactly_the_window() {
        let dict = Dictionary::new();
        // Window of 1: each probe sees exactly the previous document.
        let mut j = IncrementalSlidingJoiner::new(1, 0.9);
        assert!(j.insert_and_probe(doc(&dict, 1, "k", 7)).is_empty());
        assert_eq!(j.insert_and_probe(doc(&dict, 2, "k", 7)), vec![DocId(1)]);
        assert_eq!(j.insert_and_probe(doc(&dict, 3, "k", 7)), vec![DocId(2)]);
        assert_eq!(j.window_len(), 1);
    }

    #[test]
    fn fast_path_disabled_when_ubiquity_breaks() {
        let dict = Dictionary::new();
        // Build a window where "a" is ubiquitous, then insert a doc
        // without "a": partners must still be found (no fast-path miss).
        let mut j = IncrementalSlidingJoiner::new(100, 0.99);
        j.insert_and_probe(doc(&dict, 1, "a", 1));
        j.insert_and_probe(Document::from_json(DocId(2), r#"{"a":1,"b":2}"#, &dict).unwrap());
        // Rebuild has not happened; order from the empty initial tree means
        // everything is un-ranked, but force a realistic case: rebuild now.
        let mut j = IncrementalSlidingJoiner::new(100, 0.99);
        let base: Vec<Document> = (0..10u64)
            .map(|i| {
                Document::from_json(DocId(i), &format!(r#"{{"a":1,"t":{i}}}"#), &dict).unwrap()
            })
            .collect();
        for d in &base {
            j.insert_and_probe(d.clone());
        }
        // Force a rebuild so "a" becomes ubiquitous in the order.
        while j.rebuilds() == 0 {
            j.insert_and_probe(
                Document::from_json(DocId(1000 + j.window_len() as u64), r#"{"a":1}"#, &dict)
                    .unwrap(),
            );
            if j.window_len() > 90 {
                break;
            }
        }
        // A document without "a" shares "b" with nothing yet; then one
        // with only "b" must find it despite the broken ubiquity.
        let d_no_a = Document::from_json(DocId(5000), r#"{"b":9}"#, &dict).unwrap();
        assert!(j.insert_and_probe(d_no_a).is_empty());
        let probe_b = Document::from_json(DocId(5001), r#"{"b":9}"#, &dict).unwrap();
        let partners = j.insert_and_probe(probe_b);
        assert!(
            partners.contains(&DocId(5000)),
            "fast path must be disabled after non-ubiquitous insert: {partners:?}"
        );
    }

    #[test]
    fn partners_found_across_panes() {
        let dict = Dictionary::new();
        let mut j = SlidingJoiner::new(WindowSpec::sliding(2, 3));
        // Pane 1: d1, d2 share k:1.
        assert!(j.insert_and_probe(doc(&dict, 1, "k", 1)).is_empty());
        assert_eq!(j.insert_and_probe(doc(&dict, 2, "k", 1)), vec![DocId(1)]);
        // Pane 2 open: d3 probes the frozen pane 1.
        let p = j.insert_and_probe(doc(&dict, 3, "k", 1));
        assert_eq!(p.len(), 2);
        assert_eq!(j.frozen_panes(), 1);
    }

    #[test]
    fn eviction_drops_old_panes() {
        let dict = Dictionary::new();
        let mut j = SlidingJoiner::new(WindowSpec::sliding(1, 2)); // window = 2 panes of 1 doc
        j.insert_and_probe(doc(&dict, 1, "k", 7));
        j.insert_and_probe(doc(&dict, 2, "k", 7));
        // d1's pane has been evicted by now (window covers 2 newest panes,
        // one frozen + one open); d3 only sees d2.
        let p = j.insert_and_probe(doc(&dict, 3, "k", 7));
        assert_eq!(p, vec![DocId(2)]);
        assert!(j.window_len() <= 2);
    }

    #[test]
    fn window_len_tracks_contents() {
        let dict = Dictionary::new();
        let mut j = SlidingJoiner::new(WindowSpec::sliding(3, 2));
        for i in 0..7 {
            j.insert_and_probe(doc(&dict, i + 1, "k", i as i64));
        }
        assert_eq!(j.total_inserted(), 7);
        assert!(j.window_len() <= 6, "window holds {} docs", j.window_len());
    }

    #[test]
    fn agrees_with_nlj_within_single_pane_window() {
        let dict = Dictionary::new();
        // One giant pane == tumbling window; compare against NLJ.
        let docs: Vec<Document> = [
            r#"{"u":"A","s":"W"}"#,
            r#"{"u":"A","s":"W","m":2}"#,
            r#"{"u":"A","s":"E"}"#,
            r#"{"ip":"x","s":"W"}"#,
        ]
        .iter()
        .enumerate()
        .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, &dict).unwrap())
        .collect();
        let mut j = SlidingJoiner::new(WindowSpec::sliding(100, 1));
        let mut got = Vec::new();
        for d in &docs {
            for p in j.insert_and_probe(d.clone()) {
                got.push((p, d.id()));
            }
        }
        got.sort();
        let mut want = crate::nlj::join_batch(&docs);
        want.sort();
        assert_eq!(got, want);
    }
}
