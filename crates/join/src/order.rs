//! The global attribute ordering imposed on FP-tree input (§V-A).
//!
//! Attributes are sorted in **descending document frequency** (how many
//! documents of the batch contain the attribute); ties are broken by the
//! **smaller number of distinct values** within the batch, then by attribute
//! id for determinism. Attributes that appear in *every* document of the
//! batch are *ubiquitous* — they occupy the first [`AttrOrder::ubiquitous`]
//! ranks and enable the FPTreeJoin fast path of §V-B.

use ssj_json::{AttrId, Document, FxHashMap, FxHashSet, Pair};

/// A frozen attribute ordering computed from one batch (window) of documents.
#[derive(Debug, Clone)]
pub struct AttrOrder {
    /// `rank[attr.index()]` = position of the attribute in the global order;
    /// `u32::MAX` for attributes unseen in the batch.
    rank: Vec<u32>,
    /// Attributes in rank order.
    by_rank: Vec<AttrId>,
    /// How many leading ranks belong to attributes present in all documents.
    ubiquitous: usize,
    /// Number of documents the order was computed from.
    docs: usize,
}

impl AttrOrder {
    /// Compute the ordering from a batch of documents.
    pub fn compute<'a, I>(docs: I) -> Self
    where
        I: IntoIterator<Item = &'a Document>,
    {
        let mut doc_freq: FxHashMap<AttrId, u32> = FxHashMap::default();
        let mut values: FxHashMap<AttrId, FxHashSet<u32>> = FxHashMap::default();
        let mut n_docs = 0usize;
        for doc in docs {
            n_docs += 1;
            for &Pair { attr, avp } in doc.pairs() {
                *doc_freq.entry(attr).or_insert(0) += 1;
                values.entry(attr).or_default().insert(avp.0);
            }
        }
        let mut attrs: Vec<AttrId> = doc_freq.keys().copied().collect();
        attrs.sort_by(|a, b| {
            let fa = doc_freq[a];
            let fb = doc_freq[b];
            // Descending frequency, then ascending distinct values, then id.
            fb.cmp(&fa)
                .then_with(|| values[a].len().cmp(&values[b].len()))
                .then_with(|| a.cmp(b))
        });
        let ubiquitous = attrs
            .iter()
            .take_while(|a| doc_freq[a] as usize == n_docs && n_docs > 0)
            .count();
        let max_id = attrs.iter().map(|a| a.index()).max().map_or(0, |m| m + 1);
        let mut rank = vec![u32::MAX; max_id];
        for (r, attr) in attrs.iter().enumerate() {
            rank[attr.index()] = r as u32;
        }
        AttrOrder {
            rank,
            by_rank: attrs,
            ubiquitous,
            docs: n_docs,
        }
    }

    /// Rank of `attr`; `u32::MAX` when the attribute was unseen in the batch
    /// (unseen attributes sort last, in id order, so insertion still works).
    #[inline]
    pub fn rank(&self, attr: AttrId) -> u32 {
        self.rank.get(attr.index()).copied().unwrap_or(u32::MAX)
    }

    /// Attributes of the batch in rank order.
    pub fn attrs(&self) -> &[AttrId] {
        &self.by_rank
    }

    /// Number of attributes that appear in every document of the batch —
    /// the `num` input of FPTreeJoin (Algorithm 2).
    #[inline]
    pub fn ubiquitous(&self) -> usize {
        self.ubiquitous
    }

    /// Number of documents the order was computed from.
    pub fn doc_count(&self) -> usize {
        self.docs
    }

    /// Reorder a document's pairs by rank (stable for unseen attributes:
    /// they keep relative id order after all ranked attributes).
    pub fn reorder(&self, doc: &Document) -> Vec<Pair> {
        let mut pairs = Vec::new();
        self.reorder_into(doc, &mut pairs);
        pairs
    }

    /// [`reorder`](AttrOrder::reorder) into a caller-provided buffer, so
    /// hot paths (tree insertion, probing) reuse one allocation. The buffer
    /// is cleared first; its capacity is retained.
    pub fn reorder_into(&self, doc: &Document, out: &mut Vec<Pair>) {
        out.clear();
        out.extend_from_slice(doc.pairs());
        // Sort key includes the attr id so unseen attrs (rank u32::MAX)
        // stay deterministic; sort_unstable is fine because keys are unique
        // (a document holds at most one pair per attribute).
        out.sort_unstable_by_key(|p| (self.rank(p.attr), p.attr));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssj_json::{Dictionary, DocId, Document};

    fn docs(dict: &Dictionary, srcs: &[&str]) -> Vec<Document> {
        srcs.iter()
            .enumerate()
            .map(|(i, s)| Document::from_json(DocId(i as u64 + 1), s, dict).unwrap())
            .collect()
    }

    /// Table I of the paper: the fixed ordering must be b → a → c.
    #[test]
    fn paper_table1_ordering() {
        let dict = Dictionary::new();
        let ds = docs(
            &dict,
            &[
                r#"{"a":3,"b":7,"c":1}"#,
                r#"{"a":3,"b":8}"#,
                r#"{"a":3,"b":7}"#,
                r#"{"b":8,"c":2}"#,
            ],
        );
        let order = AttrOrder::compute(&ds);
        let names: Vec<String> = order.attrs().iter().map(|&a| dict.attr_name(a)).collect();
        assert_eq!(names, vec!["b", "a", "c"]);
        // b appears in all 4 documents → exactly one ubiquitous attribute.
        assert_eq!(order.ubiquitous(), 1);
    }

    #[test]
    fn tie_broken_by_distinct_values() {
        let dict = Dictionary::new();
        // x and y both appear in 2 docs; x has 1 distinct value, y has 2.
        let ds = docs(&dict, &[r#"{"x":1,"y":1}"#, r#"{"x":1,"y":2}"#]);
        let order = AttrOrder::compute(&ds);
        let names: Vec<String> = order.attrs().iter().map(|&a| dict.attr_name(a)).collect();
        assert_eq!(names, vec!["x", "y"]);
        assert_eq!(order.ubiquitous(), 2);
    }

    #[test]
    fn reorder_follows_ranks() {
        let dict = Dictionary::new();
        let ds = docs(
            &dict,
            &[
                r#"{"a":3,"b":7,"c":1}"#,
                r#"{"a":3,"b":8}"#,
                r#"{"a":3,"b":7}"#,
                r#"{"b":8,"c":2}"#,
            ],
        );
        let order = AttrOrder::compute(&ds);
        let reordered = order.reorder(&ds[0]);
        let names: Vec<String> = reordered.iter().map(|p| dict.attr_name(p.attr)).collect();
        assert_eq!(names, vec!["b", "a", "c"]);
    }

    #[test]
    fn unseen_attributes_rank_last() {
        let dict = Dictionary::new();
        let ds = docs(&dict, &[r#"{"a":1}"#]);
        let order = AttrOrder::compute(&ds);
        let later = Document::from_json(DocId(10), r#"{"z":5,"a":1}"#, &dict).unwrap();
        let reordered = order.reorder(&later);
        assert_eq!(dict.attr_name(reordered[0].attr), "a");
        assert_eq!(dict.attr_name(reordered[1].attr), "z");
        assert_eq!(order.rank(reordered[1].attr), u32::MAX);
    }

    #[test]
    fn empty_batch() {
        let order = AttrOrder::compute(std::iter::empty());
        assert_eq!(order.ubiquitous(), 0);
        assert_eq!(order.doc_count(), 0);
        assert!(order.attrs().is_empty());
    }

    #[test]
    fn no_ubiquitous_when_attrs_disjoint() {
        let dict = Dictionary::new();
        let ds = docs(&dict, &[r#"{"a":1}"#, r#"{"b":2}"#]);
        let order = AttrOrder::compute(&ds);
        assert_eq!(order.ubiquitous(), 0);
    }
}
